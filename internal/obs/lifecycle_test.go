package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDecisionErrRatio(t *testing.T) {
	cases := []struct {
		est, act, threshold float64
		ratio               float64
		mispredict          bool
	}{
		{1000, 1000, 2, 1, false},   // exact estimate
		{1000, 4000, 2, 4, true},    // 4x under-estimate
		{4000, 1000, 2, 4, true},    // symmetric: 4x over-estimate
		{1000, 1999, 2, 1.999, false},
		{1000, 0, 2, 0, false},      // never observed → informational
		{0, 50, 2, 50, true},        // estimate floored at 1 row
		{1000, 4000, 0, 4, false},   // zero threshold never mispredicts
	}
	for i, c := range cases {
		d := Decision{Estimate: c.est, Actual: c.act, Threshold: c.threshold}
		if got := d.ErrRatio(); got != c.ratio {
			t.Errorf("case %d: ErrRatio() = %g, want %g", i, got, c.ratio)
		}
		if got := d.Mispredicted(); got != c.mispredict {
			t.Errorf("case %d: Mispredicted() = %v, want %v", i, got, c.mispredict)
		}
	}
}

func TestDecisionLine(t *testing.T) {
	d := Decision{
		Name: "radix bits", Chosen: "fanout=256 passes=2",
		Inputs:   "build card=1.9Mi",
		Estimate: 128 << 10, Actual: 1.9 * (1 << 20),
		Unit: "build rows", Threshold: 2,
	}
	line := d.Line()
	for _, want := range []string{"radix bits:", "fanout=256", "estimate=128Ki", "actual=1.9Mi", "err=15.2x", "MISPREDICT"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line() = %q, missing %q", line, want)
		}
	}
	// Informational decision: no actual, no err, no MISPREDICT.
	info := Decision{Name: "sort method", Chosen: "quicksort", Estimate: 5000, Unit: "rows"}
	line = info.Line()
	if strings.Contains(line, "actual") || strings.Contains(line, "MISPREDICT") {
		t.Errorf("informational Line() = %q, should have no actual/MISPREDICT", line)
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		42:        "42",
		9999:      "9999",
		20.0 / 3:  "6.7",
		7.02:      "7",
		128 << 10: "128Ki",
		1 << 20:   "1Mi",
		3 << 30:   "3Gi",
	}
	for v, want := range cases {
		if got := FmtCount(v); got != want {
			t.Errorf("FmtCount(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestProgressGauges(t *testing.T) {
	var p Progress
	p.AddRows(100)
	p.AddRows(28)
	if p.Rows() != 128 {
		t.Fatalf("Rows() = %d, want 128", p.Rows())
	}
	p.WorkerStart()
	p.WorkerStart()
	if p.BusyWorkers() != 2 || p.PeakWorkers() != 2 {
		t.Fatalf("busy/peak = %d/%d, want 2/2", p.BusyWorkers(), p.PeakWorkers())
	}
	p.WorkerDone(90)
	p.WorkerDone(38)
	if p.BusyWorkers() != 0 || p.PeakWorkers() != 2 {
		t.Fatalf("after done: busy/peak = %d/%d, want 0/2", p.BusyWorkers(), p.PeakWorkers())
	}
	if p.MaxWorkerRows() != 90 {
		t.Fatalf("MaxWorkerRows() = %d, want 90", p.MaxWorkerRows())
	}
}

func TestActiveSetRegisterSnapshot(t *testing.T) {
	s := NewActiveSet()
	q1 := s.Register("SELECT * FROM emp")
	q2 := s.Register("SELECT * FROM dept")
	q2.SetPhase(PhaseJoin)
	q2.Progress().AddRows(42)

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() has %d entries, want 2", len(snap))
	}
	if snap[0].ID != q1.ID() || snap[1].ID != q2.ID() {
		t.Fatalf("snapshot order = %d,%d — want oldest first", snap[0].ID, snap[1].ID)
	}
	if snap[0].Phase != "plan" || snap[1].Phase != "join" {
		t.Fatalf("phases = %q,%q", snap[0].Phase, snap[1].Phase)
	}
	if snap[1].Rows != 42 {
		t.Fatalf("rows = %d, want 42", snap[1].Rows)
	}
	if q1.Progress().Label() != fmt.Sprintf("q%d", q1.ID()) {
		t.Fatalf("label = %q", q1.Progress().Label())
	}

	id2 := q2.ID() // capture before deregister: the record is recycled
	s.Deregister(q1)
	s.Deregister(q2)
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("after deregister: %d entries", len(got))
	}
	// Pooled record reuse must fully reset the gauges.
	q3 := s.Register("SELECT 1")
	if q3.Progress().Rows() != 0 || q3.Progress().PeakWorkers() != 0 || q3.Progress().MaxWorkerRows() != 0 {
		t.Fatalf("recycled record not reset: rows=%d peak=%d max=%d",
			q3.Progress().Rows(), q3.Progress().PeakWorkers(), q3.Progress().MaxWorkerRows())
	}
	if q3.ID() <= id2 {
		t.Fatalf("ids must keep increasing: %d after %d", q3.ID(), id2)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 3)
	if l.Threshold() != time.Millisecond {
		t.Fatalf("Threshold() = %s", l.Threshold())
	}
	for i := 1; i <= 5; i++ {
		l.Record(SlowQuery{ID: uint64(i), Wall: time.Duration(i) * time.Millisecond})
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot() has %d entries, want 3 (ring capacity)", len(snap))
	}
	// Newest first; the two oldest were evicted.
	for i, want := range []uint64{5, 4, 3} {
		if snap[i].ID != want {
			t.Fatalf("snap[%d].ID = %d, want %d", i, snap[i].ID, want)
		}
	}
}

func TestFloatHistogram(t *testing.T) {
	var h FloatHistogram
	h.init(DefaultSkewBounds())
	h.Observe(1.0)  // le=1.1
	h.Observe(1.3)  // le=1.5
	h.Observe(2.0)  // le=2 (inclusive)
	h.Observe(100)  // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Max != 100 {
		t.Fatalf("max = %g, want 100", s.Max)
	}
	if want := (1.0 + 1.3 + 2.0 + 100) / 4; s.Mean() < want-0.001 || s.Mean() > want+0.001 {
		t.Fatalf("mean = %g, want ≈%g", s.Mean(), want)
	}
	want := []FloatBucket{{Le: 1.1, N: 1}, {Le: 1.5, N: 1}, {Le: 2, N: 1}, {Le: 0, N: 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestRegistryDecisionsAndSkew(t *testing.T) {
	r := NewRegistry()
	r.RecordDecision(Decision{Name: "batch", Estimate: 1000, Actual: 10, Threshold: 2})  // 100x → mispredict
	r.RecordDecision(Decision{Name: "batch", Estimate: 1000, Actual: 900, Threshold: 2}) // fine
	r.RecordDecision(Decision{Name: "radix bits", Estimate: 10, Actual: 100, Threshold: 2})
	r.ObserveRadixSkew(1.5)
	r.ObserveRadixSkew(8)
	r.ObserveRadixSkew(0) // ignored: no partitions

	if got := r.MispredictCount("batch"); got != 1 {
		t.Fatalf("MispredictCount(batch) = %d, want 1", got)
	}
	if got := r.MispredictCount("radix bits"); got != 1 {
		t.Fatalf("MispredictCount(radix bits) = %d, want 1", got)
	}
	s := r.Snapshot()
	if s.PlanMispredicts["batch"] != 1 {
		t.Fatalf("snapshot mispredicts = %+v", s.PlanMispredicts)
	}
	if s.RadixSkew.Count != 2 || s.RadixSkew.Max != 8 {
		t.Fatalf("skew = %+v", s.RadixSkew)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`mmdb_plan_mispredict_total{decision="batch"} 1`,
		`mmdb_radix_skew_bucket{le="1.5"} 1`,
		`mmdb_radix_skew_bucket{le="+Inf"} 2`,
		"mmdb_radix_skew_count 2",
		"mmdb_radix_skew_max 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

func TestTraceFormatDecisions(t *testing.T) {
	tr := &QueryTrace{
		Root: &TraceNode{Op: "query", Detail: "emp"},
		Decisions: []Decision{
			{Name: "batch", Chosen: "256-tuple blocks", Estimate: 5000, Actual: 49, Unit: "rows", Threshold: 2},
		},
	}
	out := tr.Format()
	if !strings.Contains(out, "decision batch:") || !strings.Contains(out, "MISPREDICT") {
		t.Fatalf("Format() = %q, missing decision line", out)
	}
}

func TestDebugHandler(t *testing.T) {
	active := NewActiveSet()
	slow := NewSlowLog(time.Millisecond, 4)
	q := active.Register("SELECT * FROM emp WHERE salary > 100")
	q.SetPhase(PhaseSelect)
	slow.Record(SlowQuery{ID: 7, Text: "SELECT DISTINCT dept FROM emp", Wall: 5 * time.Millisecond, Rows: 12,
		Trace: &QueryTrace{Root: &TraceNode{Op: "query", Detail: "emp"}}})
	h := DebugHandler(active, slow)

	get := func(url string) string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec.Body.String()
	}
	if body := get("/debug/queries"); !strings.Contains(body, "SELECT * FROM emp") || !strings.Contains(body, "select") {
		t.Fatalf("/debug/queries = %q", body)
	}
	if body := get("/debug/slow"); !strings.Contains(body, "SELECT DISTINCT dept") || !strings.Contains(body, "executed:") {
		t.Fatalf("/debug/slow = %q", body)
	}
	var infos []ActiveQueryInfo
	if err := json.Unmarshal([]byte(get("/debug/queries?format=json")), &infos); err != nil || len(infos) != 1 {
		t.Fatalf("json queries: err=%v n=%d", err, len(infos))
	}
	var slows []SlowQuery
	if err := json.Unmarshal([]byte(get("/debug/slow?format=json")), &slows); err != nil || len(slows) != 1 || slows[0].ID != 7 {
		t.Fatalf("json slow: err=%v %+v", err, slows)
	}

	// Disabled surfaces degrade to the "no ..." placeholders.
	h = DebugHandler(nil, nil)
	if body := get("/debug/queries"); !strings.Contains(body, "no active queries") {
		t.Fatalf("disabled /debug/queries = %q", body)
	}
	if body := get("/debug/slow"); !strings.Contains(body, "no slow queries") {
		t.Fatalf("disabled /debug/slow = %q", body)
	}
}

// TestDisabledLifecycleAllocs pins the PR 1 contract for the new
// surfaces: with telemetry off (nil receivers everywhere), registering,
// progress updates, decision recording, skew observation, and slow-log
// writes must all be free.
func TestDisabledLifecycleAllocs(t *testing.T) {
	var (
		reg    *Registry
		active *ActiveSet
		slow   *SlowLog
		pg     *Progress
	)
	d := Decision{Name: "batch", Estimate: 100, Actual: 10, Threshold: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		aq := active.Register("q")
		pg2 := aq.Progress()
		aq.SetPhase(PhaseJoin)
		pg2.AddRows(128)
		pg2.WorkerStart()
		pg2.WorkerDone(128)
		_ = pg2.MaxWorkerRows()
		_ = pg.Rows()
		reg.RecordDecision(d)
		reg.ObserveRadixSkew(1.5)
		_ = slow.Threshold()
		slow.Record(SlowQuery{})
		active.Deregister(aq)
	})
	if allocs != 0 {
		t.Fatalf("disabled lifecycle allocates %.1f objects per query, want 0", allocs)
	}
}

// TestLifecycleConcurrent hammers the live registry and slow log from
// many goroutines while snapshotting; run with -race.
func TestLifecycleConcurrent(t *testing.T) {
	active := NewActiveSet()
	slow := NewSlowLog(time.Microsecond, 8)
	const goroutines, iters = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := active.Register("SELECT 1")
				pg := q.Progress()
				pg.WorkerStart()
				pg.AddRows(10)
				pg.WorkerDone(10)
				q.SetPhase(PhaseDistinct)
				slow.Record(SlowQuery{ID: q.ID(), Wall: time.Millisecond})
				if i%50 == 0 {
					_ = active.Snapshot()
					_ = slow.Snapshot()
				}
				active.Deregister(q)
			}
		}()
	}
	wg.Wait()
	if got := active.Snapshot(); len(got) != 0 {
		t.Fatalf("%d queries left registered", len(got))
	}
	if got := slow.Snapshot(); len(got) != 8 {
		t.Fatalf("slow ring has %d entries, want 8", len(got))
	}
}
