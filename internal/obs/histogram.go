package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram: bucket bounds are set
// once at construction, observations are two atomic adds plus a short
// search, and snapshots never block writers. The fixed layout is the
// zero-allocation guarantee — nothing on the observe path grows.
type Histogram struct {
	bounds   []time.Duration // ascending upper bounds; observations above the last land in the overflow bucket
	buckets  []atomic.Int64  // len(bounds)+1, last = overflow
	count    atomic.Int64
	sumNanos atomic.Int64
}

// DefaultLatencyBounds returns the default doubling layout: 1µs, 2µs, …
// ~8.4s (24 buckets), wide enough for both hot cached lookups and cold
// scans.
func DefaultLatencyBounds() []time.Duration {
	bounds := make([]time.Duration, 24)
	d := time.Microsecond
	for i := range bounds {
		bounds[i] = d
		d *= 2
	}
	return bounds
}

func (h *Histogram) init(bounds []time.Duration) {
	h.bounds = bounds
	h.buckets = make([]atomic.Int64, len(bounds)+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || h.buckets == nil {
		return
	}
	// Binary search for the first bound >= d.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Bucket is one cumulative-exposition bucket: N observations at or below
// Le.
type Bucket struct {
	Le time.Duration // +Inf for the overflow bucket (Le == 0 marks it)
	N  int64         // count within this bucket (not cumulative)
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []Bucket // non-empty buckets only, ascending; overflow has Le == 0
}

// Mean returns the average observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot copies the histogram's current state, dropping empty buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.buckets == nil {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sumNanos.Load()),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{N: n}
		if i < len(h.bounds) {
			b.Le = h.bounds[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}
