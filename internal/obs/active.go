package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the in-flight telemetry of one executing query: an atomic
// rows-processed counter fed by the morsel executor, plus worker
// saturation gauges (how many workers are busy right now, the peak so
// far, and the largest row count any single worker handled — the
// balance signal the workers decision audit compares against).
//
// Every method is safe on a nil receiver, so operators thread a
// *Progress unconditionally and a disabled database pays one branch per
// event and allocates nothing.
type Progress struct {
	label         string // pprof label value; set once at registration
	rows          atomic.Int64
	busyWorkers   atomic.Int32
	peakWorkers   atomic.Int32
	maxWorkerRows atomic.Int64
	// Scheduler costs folded per operator run: morsels of this query
	// stolen across pool workers, and admission latency waiting for a
	// first worker.
	schedSteals    atomic.Int64
	schedWaitNanos atomic.Int64
}

// Label returns the query's pprof label value ("q<id>"). Safe on a nil
// receiver (returns "").
func (p *Progress) Label() string {
	if p == nil {
		return ""
	}
	return p.label
}

// AddRows advances the rows-processed counter. Safe on a nil receiver.
func (p *Progress) AddRows(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.rows.Add(n)
}

// Rows returns rows processed so far. Safe on a nil receiver.
func (p *Progress) Rows() int64 {
	if p == nil {
		return 0
	}
	return p.rows.Load()
}

// WorkerStart marks one worker goroutine busy and raises the peak gauge.
// Safe on a nil receiver.
func (p *Progress) WorkerStart() {
	if p == nil {
		return
	}
	busy := p.busyWorkers.Add(1)
	for {
		peak := p.peakWorkers.Load()
		if busy <= peak || p.peakWorkers.CompareAndSwap(peak, busy) {
			return
		}
	}
}

// WorkerDone marks one worker idle and folds its per-worker row total
// into the max-rows-per-worker gauge. Safe on a nil receiver.
func (p *Progress) WorkerDone(rows int64) {
	if p == nil {
		return
	}
	p.busyWorkers.Add(-1)
	for {
		cur := p.maxWorkerRows.Load()
		if rows <= cur || p.maxWorkerRows.CompareAndSwap(cur, rows) {
			return
		}
	}
}

// BusyWorkers returns the number of currently busy workers. Safe on a
// nil receiver.
func (p *Progress) BusyWorkers() int {
	if p == nil {
		return 0
	}
	return int(p.busyWorkers.Load())
}

// PeakWorkers returns the peak concurrent worker count. Safe on a nil
// receiver.
func (p *Progress) PeakWorkers() int {
	if p == nil {
		return 0
	}
	return int(p.peakWorkers.Load())
}

// MaxWorkerRows returns the largest row count any single worker
// processed so far. Safe on a nil receiver.
func (p *Progress) MaxWorkerRows() int64 {
	if p == nil {
		return 0
	}
	return p.maxWorkerRows.Load()
}

// AddSched folds one operator run's scheduler costs — stolen morsels
// and admission wait — into the query's gauges. Safe on a nil receiver.
func (p *Progress) AddSched(steals int64, wait time.Duration) {
	if p == nil {
		return
	}
	if steals != 0 {
		p.schedSteals.Add(steals)
	}
	if wait != 0 {
		p.schedWaitNanos.Add(int64(wait))
	}
}

// SchedSteals returns the query's stolen-morsel total. Safe on a nil
// receiver.
func (p *Progress) SchedSteals() int64 {
	if p == nil {
		return 0
	}
	return p.schedSteals.Load()
}

// SchedWait returns the query's accumulated admission latency. Safe on
// a nil receiver.
func (p *Progress) SchedWait() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.schedWaitNanos.Load())
}

// Query phases for ActiveQuery.SetPhase, in pipeline order.
const (
	PhasePlan int32 = iota
	PhaseSelect
	PhaseJoin
	PhaseGroup
	PhaseProject
	PhaseDistinct
	PhaseOrder
)

var phaseNames = [...]string{"plan", "select", "join", "group", "project", "distinct", "order"}

// ActiveQuery is one in-flight query in the live registry: identity,
// query text, start time, current phase, and live Progress. All methods
// are safe on a nil receiver (the disabled state).
type ActiveQuery struct {
	id    uint64
	text  string
	start time.Time
	phase atomic.Int32
	prog  Progress
}

// ID returns the query's registration id. Safe on a nil receiver.
func (q *ActiveQuery) ID() uint64 {
	if q == nil {
		return 0
	}
	return q.id
}

// Progress returns the query's live progress, nil on a nil receiver —
// so a disabled database threads a nil *Progress all the way down.
func (q *ActiveQuery) Progress() *Progress {
	if q == nil {
		return nil
	}
	return &q.prog
}

// SetPhase moves the query to the given pipeline phase. Safe on a nil
// receiver.
func (q *ActiveQuery) SetPhase(phase int32) {
	if q == nil {
		return
	}
	q.phase.Store(phase)
}

// ActiveQueryInfo is a point-in-time copy of one in-flight query, safe
// to retain and serialize.
type ActiveQueryInfo struct {
	ID            uint64        `json:"id"`
	Text          string        `json:"text"`
	Phase         string        `json:"phase"`
	Start         time.Time     `json:"start"`
	Elapsed       time.Duration `json:"elapsed_nanos"`
	Rows          int64         `json:"rows"`
	BusyWorkers   int           `json:"busy_workers"`
	PeakWorkers   int           `json:"peak_workers"`
	MaxWorkerRows int64         `json:"max_worker_rows"`
	SchedSteals   int64         `json:"sched_steals,omitempty"`
	SchedWait     time.Duration `json:"sched_wait_nanos,omitempty"`
}

// ActiveSet is the live query registry: every executing query registers
// on start and deregisters on completion; Snapshot lists what is running
// right now. Registration reuses pooled ActiveQuery records, so the
// steady-state enabled cost is one mutex-guarded map insert per query.
// All methods are safe on a nil receiver.
type ActiveSet struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]*ActiveQuery
	pool sync.Pool
}

// NewActiveSet creates an enabled live registry.
func NewActiveSet() *ActiveSet {
	return &ActiveSet{m: make(map[uint64]*ActiveQuery)}
}

// Register adds an in-flight query and returns its record. Safe on a
// nil receiver (returns nil, which every ActiveQuery method tolerates).
func (s *ActiveSet) Register(text string) *ActiveQuery {
	if s == nil {
		return nil
	}
	q, _ := s.pool.Get().(*ActiveQuery)
	if q == nil {
		q = &ActiveQuery{}
	}
	s.mu.Lock()
	s.next++
	// Field-wise reset: the record embeds atomics, so a struct assignment
	// would copy them (and trip go vet's copylocks check).
	q.id = s.next
	q.text = text
	q.start = time.Now()
	q.phase.Store(PhasePlan)
	q.prog.label = "q" + strconv.FormatUint(q.id, 10)
	q.prog.rows.Store(0)
	q.prog.busyWorkers.Store(0)
	q.prog.peakWorkers.Store(0)
	q.prog.maxWorkerRows.Store(0)
	q.prog.schedSteals.Store(0)
	q.prog.schedWaitNanos.Store(0)
	s.m[q.id] = q
	s.mu.Unlock()
	return q
}

// Deregister removes a completed query and recycles its record. Safe on
// nil receivers and a nil query.
func (s *ActiveSet) Deregister(q *ActiveQuery) {
	if s == nil || q == nil {
		return
	}
	s.mu.Lock()
	delete(s.m, q.id)
	s.mu.Unlock()
	s.pool.Put(q)
}

// Snapshot copies every in-flight query, ordered by registration id
// (oldest first). Safe on a nil receiver (returns nil).
func (s *ActiveSet) Snapshot() []ActiveQueryInfo {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	out := make([]ActiveQueryInfo, 0, len(s.m))
	for _, q := range s.m {
		out = append(out, ActiveQueryInfo{
			ID:            q.id,
			Text:          q.text,
			Phase:         phaseNames[q.phase.Load()],
			Start:         q.start,
			Elapsed:       now.Sub(q.start),
			Rows:          q.prog.Rows(),
			BusyWorkers:   q.prog.BusyWorkers(),
			PeakWorkers:   q.prog.PeakWorkers(),
			MaxWorkerRows: q.prog.MaxWorkerRows(),
			SchedSteals:   q.prog.SchedSteals(),
			SchedWait:     q.prog.SchedWait(),
		})
	}
	s.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
