package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// DebugHandler exposes the live query registry and the slow-query log
// over HTTP, next to the metrics handler:
//
//	/debug/queries — in-flight queries with phase, progress, saturation
//	/debug/slow    — the slow-query ring, newest first, full traces
//
// Plain text by default, JSON with ?format=json. Both arguments may be
// nil (the corresponding surface reports itself disabled).
func DebugHandler(active *ActiveSet, slow *SlowLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			writeJSON(w, active.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, FormatActive(active.Snapshot()))
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			writeJSON(w, slow.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, FormatSlow(slow.Snapshot()))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// FormatActive renders a live-registry snapshot as an aligned text block
// — the shell's .active output and /debug/queries' text form.
func FormatActive(qs []ActiveQueryInfo) string {
	if len(qs) == 0 {
		return "no active queries\n"
	}
	var b strings.Builder
	for _, q := range qs {
		fmt.Fprintf(&b, "q%-4d %-9s elapsed=%-10s rows=%-10d workers=%d/%d peak",
			q.ID, q.Phase, q.Elapsed.Round(time.Millisecond), q.Rows,
			q.BusyWorkers, q.PeakWorkers)
		if q.SchedSteals > 0 || q.SchedWait > 0 {
			fmt.Fprintf(&b, "  sched steals=%d waited=%s",
				q.SchedSteals, q.SchedWait.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "  %s\n", q.Text)
	}
	return b.String()
}

// FormatSlow renders a slow-log snapshot, newest first, each entry with
// its full trace indented below the summary line.
func FormatSlow(qs []SlowQuery) string {
	if len(qs) == 0 {
		return "no slow queries\n"
	}
	var b strings.Builder
	for _, q := range qs {
		fmt.Fprintf(&b, "q%-4d wall=%-10s rows=%-10d", q.ID, q.Wall.Round(time.Microsecond), q.Rows)
		if q.SchedSteals > 0 || q.SchedWait > 0 {
			fmt.Fprintf(&b, " sched steals=%d waited=%s",
				q.SchedSteals, q.SchedWait.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, " %s\n", q.Text)
		if q.Trace != nil {
			for _, line := range strings.Split(q.Trace.Format(), "\n") {
				b.WriteString("  ")
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
