package obs

import (
	"sync"
	"time"
)

// DefaultSlowLogSize is the slow-query ring capacity when the database
// does not set one.
const DefaultSlowLogSize = 32

// SlowQuery is one captured slow query: identity, text, timing, result
// size, and the full execution trace (operator tree plus the decision
// audit) — the evidence for a bad plan, preserved past the query.
type SlowQuery struct {
	ID    uint64        `json:"id"`
	Text  string        `json:"text"`
	Start time.Time     `json:"start"`
	Wall  time.Duration `json:"wall_nanos"`
	Rows  int64         `json:"rows"`
	Trace *QueryTrace   `json:"trace,omitempty"`

	// Scheduler costs of this query: morsels executed by a worker other
	// than the enqueuer, and time spent waiting for pool admission — the
	// signal separating "slow plan" from "slow because the pool was
	// saturated".
	SchedSteals int64         `json:"sched_steals,omitempty"`
	SchedWait   time.Duration `json:"sched_wait_nanos,omitempty"`
}

// SlowLog is a bounded ring buffer of the most recent queries whose wall
// time met the threshold. All methods are safe on a nil receiver (the
// disabled state: no threshold configured).
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	buf       []SlowQuery
	next      int // ring write position
	n         int // entries recorded (saturates at len(buf))
}

// NewSlowLog creates a slow-query log capturing queries at or above the
// threshold; size <= 0 uses DefaultSlowLogSize. A zero threshold
// captures every query — useful in tests, pathological in production.
func NewSlowLog(threshold time.Duration, size int) *SlowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowQuery, size)}
}

// Threshold returns the capture threshold. Safe on a nil receiver
// (returns 0).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record captures one slow query, evicting the oldest entry when the
// ring is full. The caller checks the threshold (it already has the
// wall time in hand); Record never filters. Safe on a nil receiver.
func (l *SlowLog) Record(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Snapshot copies the captured queries, newest first. Safe on a nil
// receiver (returns nil).
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.next-1-i+len(l.buf))%len(l.buf)])
	}
	return out
}
