package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSchedExposition wires a scheduler-stats source and checks the
// saturation snapshot flows into Snapshot, the human block, and the
// Prometheus exposition.
func TestSchedExposition(t *testing.T) {
	r := NewRegistry()
	r.SetSchedSource(func() SchedStats {
		return SchedStats{Workers: 8, QueueDepth: 3, Busy: 5, Steals: 42, Parks: 7}
	})

	s := r.Snapshot()
	if s.Sched == nil {
		t.Fatal("Snapshot.Sched nil with a source wired")
	}
	if s.Sched.Steals != 42 || s.Sched.Workers != 8 {
		t.Fatalf("sched snapshot = %+v", *s.Sched)
	}
	if !strings.Contains(s.String(), "scheduler         workers=8 queue=3 busy=5 steals=42 parks=7") {
		t.Fatalf("String() missing scheduler line:\n%s", s.String())
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE mmdb_sched_queue_depth gauge",
		"mmdb_sched_queue_depth 3",
		"mmdb_sched_workers 8",
		"mmdb_sched_busy_workers 5",
		"# TYPE mmdb_sched_steals_total counter",
		"mmdb_sched_steals_total 42",
		"mmdb_sched_park_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSchedExpositionAbsentWithoutSource checks databases without a pool
// (PoolDisabled) emit no scheduler series at all.
func TestSchedExpositionAbsentWithoutSource(t *testing.T) {
	r := NewRegistry()
	if r.Snapshot().Sched != nil {
		t.Fatal("Sched populated without a source")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "mmdb_sched_") {
		t.Fatal("scheduler series emitted without a source")
	}
	if strings.Contains(r.Snapshot().String(), "scheduler") {
		t.Fatal("String() shows a scheduler line without a source")
	}
}

// TestSlowQuerySchedFields checks the slow-log record carries the
// scheduler costs.
func TestSlowQuerySchedFields(t *testing.T) {
	l := NewSlowLog(0, 4)
	l.Record(SlowQuery{ID: 1, Text: "q", Wall: time.Second, SchedSteals: 5, SchedWait: 3 * time.Millisecond})
	got := l.Snapshot()
	if len(got) != 1 || got[0].SchedSteals != 5 || got[0].SchedWait != 3*time.Millisecond {
		t.Fatalf("slow log sched fields lost: %+v", got)
	}
	out := FormatSlow(got)
	if !strings.Contains(out, "sched steals=5 waited=3ms") {
		t.Fatalf("FormatSlow missing sched column:\n%s", out)
	}
}

// TestTraceSchedLine checks EXPLAIN ANALYZE renders the scheduler cost
// line when the query ran on the pool.
func TestTraceSchedLine(t *testing.T) {
	tr := &QueryTrace{
		Root:        &TraceNode{Op: "query", RowsOut: 1},
		SchedSteals: 9,
		SchedWait:   2 * time.Millisecond,
	}
	if out := tr.Format(); !strings.Contains(out, "sched: steals=9 waited=2ms") {
		t.Fatalf("trace missing sched line:\n%s", out)
	}
	quiet := &QueryTrace{Root: &TraceNode{Op: "query"}}
	if out := quiet.Format(); strings.Contains(out, "sched:") {
		t.Fatalf("off-pool trace shows sched line:\n%s", out)
	}
}
