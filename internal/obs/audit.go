package obs

import (
	"fmt"
	"math"
	"strings"
)

// Decision is one cost-model choice the planner made while executing a
// query — the plan-vs-actual audit record. The paper steers every
// algorithm choice by measured operation counts (§3.1); the audit closes
// that loop for the four runtime choosers (plan.ChooseRadixBits,
// ChooseSortMethod, ChooseWorkers, ChooseBatchSize): each records the
// inputs it saw, the value it chose, and the estimate the choice rested
// on; at query end the observed counters fill in Actual, and the error
// ratio says whether the estimate held up.
type Decision struct {
	Name   string // chooser: "batch", "workers", "radix bits", "radix balance", "sort method"
	Inputs string // the chooser's inputs, human-readable: "requested=8 rows=1.9M"
	Chosen string // the chosen value: "256-tuple blocks", "bits=[8 6]"

	// Estimate is the quantity the chooser assumed; Actual is the observed
	// value in the same Unit (0 = not observed, e.g. a decision whose
	// inputs were exact). Threshold is the error ratio at or above which
	// the decision counts as a misprediction (0 = never — informational
	// decisions like the sort-method pick).
	Estimate  float64
	Actual    float64
	Unit      string
	Threshold float64
}

// ErrRatio is the symmetric estimate error: max/min of estimate and
// actual, floored at one row so empty results stay finite. 1.0 means the
// estimate was exact; 0 means Actual was never observed.
func (d Decision) ErrRatio() float64 {
	if d.Actual <= 0 {
		return 0
	}
	est, act := d.Estimate, d.Actual
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// Mispredicted reports whether the observed error crosses the decision's
// misprediction threshold.
func (d Decision) Mispredicted() bool {
	return d.Threshold > 0 && d.ErrRatio() >= d.Threshold
}

// Line renders the decision as one audit line:
//
//	radix bits: bits=[8 6] (build=1.9M rows)  estimate=128Ki actual=1.9M err=15.2x
func (d Decision) Line() string {
	var b strings.Builder
	b.WriteString(d.Name)
	b.WriteString(": ")
	b.WriteString(d.Chosen)
	if d.Inputs != "" {
		fmt.Fprintf(&b, " (%s)", d.Inputs)
	}
	fmt.Fprintf(&b, "  estimate=%s", FmtCount(d.Estimate))
	if d.Unit != "" {
		b.WriteString(" ")
		b.WriteString(d.Unit)
	}
	if d.Actual > 0 {
		fmt.Fprintf(&b, " actual=%s err=%.1fx", FmtCount(d.Actual), d.ErrRatio())
		if d.Mispredicted() {
			b.WriteString(" MISPREDICT")
		}
	}
	return b.String()
}

// FmtCount renders a row count compactly: exact below 10'000, then
// binary-suffixed (Ki/Mi/Gi) the way the radix crossover constants are
// quoted (plan.DefaultMinBuildRows = 128Ki).
func FmtCount(v float64) string {
	switch {
	case v < 10_000:
		// Fractional counts are forecasts; one decimal carries all the
		// signal an estimate has.
		if v != math.Trunc(v) {
			return trimZero(fmt.Sprintf("%.1f", v))
		}
		return fmt.Sprintf("%g", v)
	case v < 1<<20:
		return trimZero(fmt.Sprintf("%.1f", v/(1<<10))) + "Ki"
	case v < 1<<30:
		return trimZero(fmt.Sprintf("%.1f", v/(1<<20))) + "Mi"
	default:
		return trimZero(fmt.Sprintf("%.1f", v/(1<<30))) + "Gi"
	}
}

func trimZero(s string) string { return strings.TrimSuffix(s, ".0") }

// FmtBytes renders a byte count with binary suffixes and a B unit
// (4096 → "4KiB") for the trace's budget line.
func FmtBytes(v int64) string {
	switch {
	case v < 1<<10:
		return fmt.Sprintf("%dB", v)
	case v < 1<<20:
		return trimZero(fmt.Sprintf("%.1f", float64(v)/(1<<10))) + "KiB"
	case v < 1<<30:
		return trimZero(fmt.Sprintf("%.1f", float64(v)/(1<<20))) + "MiB"
	default:
		return trimZero(fmt.Sprintf("%.1f", float64(v)/(1<<30))) + "GiB"
	}
}
