package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
)

func TestRegistryRecordsQueries(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery("hash lookup", 100, 10, 5*time.Microsecond,
		meter.Counters{Comparisons: 7, HashCalls: 1})
	r.RecordQuery("hash lookup", 50, 5, 3*time.Microsecond,
		meter.Counters{Comparisons: 3})
	r.RecordQuery("full scan", 1000, 1000, 90*time.Microsecond, meter.Counters{})
	r.IndexProbe("T Tree", 2)
	r.IndexProbe("Mod Linear Hash", 1)
	r.IndexProbe("Array", 0) // no-op

	s := r.Snapshot()
	if s.Queries != 3 {
		t.Fatalf("Queries = %d, want 3", s.Queries)
	}
	if s.RowsScanned != 1150 || s.RowsReturned != 1015 {
		t.Fatalf("rows scanned/returned = %d/%d, want 1150/1015", s.RowsScanned, s.RowsReturned)
	}
	if got := s.QueriesByPlan["hash lookup"]; got != 2 {
		t.Fatalf("plan[hash lookup] = %d, want 2", got)
	}
	if got := s.QueriesByPlan["full scan"]; got != 1 {
		t.Fatalf("plan[full scan] = %d, want 1", got)
	}
	if got := s.IndexProbes["T Tree"]; got != 2 {
		t.Fatalf("probes[T Tree] = %d, want 2", got)
	}
	if _, ok := s.IndexProbes["Array"]; ok {
		t.Fatal("zero probe count should not register a label")
	}
	if s.Ops.Comparisons != 10 || s.Ops.HashCalls != 1 {
		t.Fatalf("ops = %+v, want cmp=10 hash=1", s.Ops)
	}
	if s.QueryLatency.Count != 3 {
		t.Fatalf("latency count = %d, want 3", s.QueryLatency.Count)
	}
	if want := 98 * time.Microsecond / 3; s.QueryLatency.Mean() != want {
		t.Fatalf("latency mean = %s, want %s", s.QueryLatency.Mean(), want)
	}
}

func TestRegistryEngineEvents(t *testing.T) {
	r := NewRegistry()
	r.TxnBegin()
	r.TxnBegin()
	r.TxnCommit()
	r.TxnAbort()
	r.LockWait(2 * time.Millisecond)
	r.LockWait(3 * time.Millisecond)
	r.Deadlock()
	r.LogAppend(9)
	r.LogAppend(11)
	r.LogFlush(2)

	s := r.Snapshot()
	if s.TxnBegins != 2 || s.TxnCommits != 1 || s.TxnAborts != 1 {
		t.Fatalf("txn = %d/%d/%d, want 2/1/1", s.TxnBegins, s.TxnCommits, s.TxnAborts)
	}
	if s.LockWaits != 2 || s.LockWaitTime != 5*time.Millisecond || s.Deadlocks != 1 {
		t.Fatalf("locks = %d waits %s deadlocks=%d", s.LockWaits, s.LockWaitTime, s.Deadlocks)
	}
	if s.LogAppends != 2 || s.LogWords != 20 || s.LogFlushes != 1 {
		t.Fatalf("log = appends=%d words=%d flushes=%d", s.LogAppends, s.LogWords, s.LogFlushes)
	}
}

// TestNilRegistry exercises the disabled state: every method must be a
// no-op on a nil receiver, and a nil snapshot must be the zero value.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.RecordQuery("x", 1, 1, time.Second, meter.Counters{Comparisons: 1})
	r.IndexProbe("T Tree", 1)
	r.LockWait(time.Second)
	r.Deadlock()
	r.TxnBegin()
	r.TxnCommit()
	r.TxnAbort()
	r.LogAppend(4)
	r.LogFlush(1)
	r.Meter().AddCompare(5) // nil SharedCounters tolerates adds
	if s := r.Snapshot(); s.Queries != 0 || s.Ops != (meter.Counters{}) ||
		s.QueriesByPlan != nil || s.QueryLatency.Count != 0 {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "disabled") {
		t.Fatalf("nil WritePrometheus = %q", b.String())
	}
}

// TestDisabledRegistryAllocs pins the zero-cost guarantee: the disabled
// hot path allocates nothing.
func TestDisabledRegistryAllocs(t *testing.T) {
	var r *Registry
	ops := meter.Counters{Comparisons: 3}
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordQuery("shape", 10, 5, time.Microsecond, ops)
		r.IndexProbe("T Tree", 1)
		r.LockWait(time.Microsecond)
		r.TxnBegin()
		r.LogAppend(8)
	})
	if allocs != 0 {
		t.Fatalf("disabled registry allocates %.1f objects per event batch, want 0", allocs)
	}
}

// TestRegistryConcurrent hammers every mutator from many goroutines; run
// with -race. Totals must come out exact — atomic counters lose nothing.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shape := [2]string{"hash lookup", "full scan"}[g%2]
			for i := 0; i < iters; i++ {
				r.RecordQuery(shape, 10, 1, time.Duration(i)*time.Microsecond,
					meter.Counters{Comparisons: 2, NodesVisited: 1})
				r.IndexProbe("T Tree", 1)
				r.TxnBegin()
				r.TxnCommit()
				r.LockWait(time.Microsecond)
				r.LogAppend(4)
				if i%100 == 0 {
					_ = r.Snapshot() // readers never block writers
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()

	s := r.Snapshot()
	total := int64(goroutines * iters)
	if s.Queries != total {
		t.Fatalf("Queries = %d, want %d", s.Queries, total)
	}
	if got := s.QueriesByPlan["hash lookup"] + s.QueriesByPlan["full scan"]; got != total {
		t.Fatalf("plan counts sum to %d, want %d", got, total)
	}
	if s.IndexProbes["T Tree"] != total {
		t.Fatalf("probes = %d, want %d", s.IndexProbes["T Tree"], total)
	}
	if s.Ops.Comparisons != 2*total || s.Ops.NodesVisited != total {
		t.Fatalf("ops = %+v", s.Ops)
	}
	if s.TxnBegins != total || s.TxnCommits != total {
		t.Fatalf("txn = %d/%d, want %d each", s.TxnBegins, s.TxnCommits, total)
	}
	if s.QueryLatency.Count != total {
		t.Fatalf("latency count = %d, want %d", s.QueryLatency.Count, total)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.init([]time.Duration{time.Microsecond, 10 * time.Microsecond, time.Millisecond})
	h.Observe(500 * time.Nanosecond) // bucket le=1µs
	h.Observe(time.Microsecond)      // le=1µs (inclusive upper bound)
	h.Observe(2 * time.Microsecond)  // le=10µs
	h.Observe(time.Second)           // overflow

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	want := []Bucket{
		{Le: time.Microsecond, N: 2},
		{Le: 10 * time.Microsecond, N: 1},
		{Le: 0, N: 1}, // overflow
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery("full scan", 100, 100, time.Millisecond, meter.Counters{Comparisons: 5})
	before := r.Snapshot()
	r.RecordQuery("hash lookup", 10, 1, time.Microsecond, meter.Counters{Comparisons: 2, HashCalls: 1})
	r.TxnBegin()
	d := r.Snapshot().Sub(before)
	if d.Queries != 1 || d.RowsScanned != 10 || d.RowsReturned != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Ops.Comparisons != 2 || d.Ops.HashCalls != 1 {
		t.Fatalf("delta ops = %+v", d.Ops)
	}
	if d.QueriesByPlan["hash lookup"] != 1 || d.QueriesByPlan["full scan"] != 0 {
		t.Fatalf("delta plans = %+v", d.QueriesByPlan)
	}
	if d.TxnBegins != 1 {
		t.Fatalf("delta txn begins = %d", d.TxnBegins)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery("tree lookup→Hash Join", 100, 10, 3*time.Microsecond,
		meter.Counters{Comparisons: 12, HashCalls: 4})
	r.IndexProbe("T Tree", 1)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"mmdb_queries_total 1",
		"mmdb_rows_scanned_total 100",
		"mmdb_rows_returned_total 10",
		`mmdb_queries_by_plan_total{plan="tree lookup→Hash Join"} 1`,
		`mmdb_index_probes_total{kind="T Tree"} 1`,
		"mmdb_ops_comparisons_total 12",
		"mmdb_ops_hash_calls_total 4",
		"mmdb_query_seconds_count 1",
		`mmdb_query_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery("full scan", 5, 5, time.Microsecond, meter.Counters{})

	// Default: Prometheus text.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "mmdb_queries_total 1") {
		t.Fatalf("prometheus body = %q", rec.Body.String())
	}

	// ?format=json: the snapshot.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if s.Queries != 1 || s.RowsScanned != 5 {
		t.Fatalf("json snapshot = %+v", s)
	}
}

// BenchmarkObsOverhead is the CI guard for the disabled-path cost: a nil
// registry — and nil lifecycle surfaces (live registry, progress, slow
// log, decision audit) — must add zero allocations per recorded event.
func BenchmarkObsOverhead(b *testing.B) {
	var (
		r      *Registry
		active *ActiveSet
		slow   *SlowLog
	)
	ops := meter.Counters{Comparisons: 3, NodesVisited: 2}
	d := Decision{Name: "batch", Estimate: 100, Actual: 10, Threshold: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordQuery("shape", 100, 10, time.Microsecond, ops)
		r.IndexProbe("T Tree", 1)
		r.TxnBegin()
		r.RecordDecision(d)
		r.ObserveRadixSkew(1.5)
		aq := active.Register("q")
		pg := aq.Progress()
		pg.AddRows(256)
		pg.WorkerStart()
		pg.WorkerDone(256)
		slow.Record(SlowQuery{})
		active.Deregister(aq)
	}
}

// BenchmarkObsEnabled measures the enabled hot path for comparison: a few
// atomic adds plus a read-locked map hit.
func BenchmarkObsEnabled(b *testing.B) {
	r := NewRegistry()
	ops := meter.Counters{Comparisons: 3, NodesVisited: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordQuery("shape", 100, 10, time.Microsecond, ops)
		r.IndexProbe("T Tree", 1)
		r.TxnBegin()
	}
}
