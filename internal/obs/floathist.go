package obs

import "sync/atomic"

// FloatHistogram is the Histogram's unitless sibling for ratio-valued
// observations (radix partition skew). Same contract: fixed bucket
// bounds set once, observations are a short search plus atomic adds, and
// nothing on the observe path allocates. The sum is held in micro-units
// so it stays a lock-free integer add.
type FloatHistogram struct {
	bounds   []float64      // ascending upper bounds; above the last = overflow
	buckets  []atomic.Int64 // len(bounds)+1, last = overflow
	count    atomic.Int64
	sumMicro atomic.Int64
	max      atomic.Int64 // max observation in micro-units
}

// DefaultSkewBounds returns the skew bucket layout: 1.0 is a perfectly
// balanced partitioning, ≥2 means the largest partition blew past twice
// the mean — the point where the L2-sizing argument starts to fail.
func DefaultSkewBounds() []float64 {
	return []float64{1.1, 1.25, 1.5, 2, 3, 4, 8, 16}
}

func (h *FloatHistogram) init(bounds []float64) {
	h.bounds = bounds
	h.buckets = make([]atomic.Int64, len(bounds)+1)
}

// Observe records one value. Safe on an uninitialized receiver.
func (h *FloatHistogram) Observe(v float64) {
	if h == nil || h.buckets == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	micro := int64(v * 1e6)
	h.sumMicro.Add(micro)
	for {
		cur := h.max.Load()
		if micro <= cur || h.max.CompareAndSwap(cur, micro) {
			return
		}
	}
}

// FloatBucket is one bucket of a FloatHistogramSnapshot: N observations
// at or below Le (Le == 0 marks the overflow bucket).
type FloatBucket struct {
	Le float64 `json:"le"`
	N  int64   `json:"n"`
}

// FloatHistogramSnapshot is a point-in-time copy of a FloatHistogram.
type FloatHistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Max     float64       `json:"max"`
	Buckets []FloatBucket `json:"buckets,omitempty"` // non-empty only, ascending
}

// Mean returns the average observation, or 0 with none.
func (s FloatHistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot copies the histogram's current state, dropping empty buckets.
func (h *FloatHistogram) Snapshot() FloatHistogramSnapshot {
	if h == nil || h.buckets == nil {
		return FloatHistogramSnapshot{}
	}
	out := FloatHistogramSnapshot{
		Count: h.count.Load(),
		Sum:   float64(h.sumMicro.Load()) / 1e6,
		Max:   float64(h.max.Load()) / 1e6,
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := FloatBucket{N: n}
		if i < len(h.bounds) {
			b.Le = h.bounds[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}
