package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/meter"
)

func sampleTrace() *QueryTrace {
	root := &TraceNode{Op: "query", RowsOut: 3}
	root.Add(&TraceNode{
		Op: "select", Detail: "emp", AccessPath: `hash lookup on "dept"`,
		RowsIn: 10000, RowsOut: 40, Wall: 120 * time.Microsecond,
		Ops: meter.Counters{Comparisons: 41, HashCalls: 1},
	})
	join := root.Add(&TraceNode{
		Op: "join", Detail: "emp ⋈ dept", AccessPath: "Hash Join",
		RowsIn: 40, RowsOut: 3, Wall: 80 * time.Microsecond,
		Ops: meter.Counters{Comparisons: 80, HashCalls: 40},
	})
	join.Add(&TraceNode{
		Op: "build", Detail: "dept", RowsIn: 10, RowsOut: 10,
		Wall: 9 * time.Microsecond, Ops: meter.Counters{HashCalls: 10},
	})
	return &QueryTrace{Root: root, Total: 412 * time.Microsecond}
}

func TestTraceTotalOps(t *testing.T) {
	tr := sampleTrace()
	ops := tr.TotalOps()
	if ops.Comparisons != 121 || ops.HashCalls != 51 {
		t.Fatalf("TotalOps = %+v, want cmp=121 hash=51", ops)
	}
	var nilTrace *QueryTrace
	if nilTrace.TotalOps() != (meter.Counters{}) {
		t.Fatal("nil trace should sum to zero")
	}
}

func TestTraceFormat(t *testing.T) {
	out := sampleTrace().Format()
	for _, want := range []string{
		"executed: 3 rows in 412µs",
		"cmp=121",
		`├─ select emp: hash lookup on "dept"  rows in=10000 out=40`,
		"└─ join emp ⋈ dept: Hash Join  rows in=40 out=3",
		"[cmp=80 hash=40]",
		"   └─ build dept", // child of the last top-level node, indented
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	// Node lines use compact counters (zero fields omitted); only the
	// header prints the full §3.1 set.
	if strings.Contains(out, "[cmp=41 move=0") {
		t.Errorf("node lines should omit zero counters:\n%s", out)
	}
}

func TestTraceFormatEmpty(t *testing.T) {
	var tr *QueryTrace
	if got := tr.Format(); !strings.Contains(got, "no trace") {
		t.Fatalf("nil Format = %q", got)
	}
	if got := (&QueryTrace{}).Format(); !strings.Contains(got, "no trace") {
		t.Fatalf("rootless Format = %q", got)
	}
}

func TestTraceNodeLine(t *testing.T) {
	n := &TraceNode{Op: "project", Detail: "2 column(s)", AccessPath: "descriptor rewrite",
		RowsIn: 40, RowsOut: 40, Wall: 3 * time.Microsecond}
	line := n.Line()
	if !strings.Contains(line, "project 2 column(s): descriptor rewrite") ||
		!strings.Contains(line, "rows in=40 out=40") {
		t.Fatalf("Line = %q", line)
	}
	if strings.Contains(line, "[") {
		t.Fatalf("zero-op node should have no counter block: %q", line)
	}
}
