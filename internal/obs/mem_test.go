package obs

import (
	"strings"
	"testing"
)

// TestMemExposition wires a grant-manager source and checks the budget
// snapshot flows into Snapshot, the human block, and the Prometheus
// exposition.
func TestMemExposition(t *testing.T) {
	r := NewRegistry()
	r.SetMemSource(func() MemStats {
		return MemStats{Total: 1 << 20, Granted: 4096, Waiting: 2, Forced: 1, Reversals: 3, Repartitions: 5}
	})

	s := r.Snapshot()
	if s.Mem == nil {
		t.Fatal("Snapshot.Mem nil with a source wired")
	}
	if s.Mem.Granted != 4096 || s.Mem.Repartitions != 5 {
		t.Fatalf("mem snapshot = %+v", *s.Mem)
	}
	if !strings.Contains(s.String(), "memory budget     total=1048576 granted=4096 waiting=2 forced=1 reversals=3 repartitions=5") {
		t.Fatalf("String() missing memory line:\n%s", s.String())
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE mmdb_mem_granted gauge",
		"mmdb_mem_budget_bytes 1048576",
		"mmdb_mem_granted 4096",
		"mmdb_mem_waiting 2",
		"# TYPE mmdb_mem_forced_total counter",
		"mmdb_mem_forced_total 1",
		"mmdb_mem_reversals_total 3",
		"mmdb_mem_repartitions_total 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMemExpositionAbsentWithoutSource: no budget, no mem series.
func TestMemExpositionAbsentWithoutSource(t *testing.T) {
	r := NewRegistry()
	if r.Snapshot().Mem != nil {
		t.Fatal("Mem populated without a source")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "mmdb_mem_") {
		t.Fatal("mem series emitted without a source")
	}
	if strings.Contains(r.Snapshot().String(), "memory budget") {
		t.Fatal("String() shows a memory line without a source")
	}
}

// TestTraceBudgetLine checks EXPLAIN ANALYZE renders the budget line
// when the operator ran under a reservation, and omits it otherwise.
func TestTraceBudgetLine(t *testing.T) {
	n := &TraceNode{Op: "join", GrantBytes: 512 << 10, Reversed: 2, Resplits: 7}
	if out := n.Line(); !strings.Contains(out, "budget: grant=512KiB reversed=2 resplit=7") {
		t.Fatalf("node missing budget detail: %s", out)
	}
	quiet := &TraceNode{Op: "join", Partitions: 8}
	if out := quiet.Line(); strings.Contains(out, "budget:") {
		t.Fatalf("unbudgeted node shows budget detail: %s", out)
	}
	// Defense counts alone (forced path granted nothing) still render.
	d := &TraceNode{Op: "join", Resplits: 1}
	if out := d.Line(); !strings.Contains(out, "budget: grant=0B reversed=0 resplit=1") {
		t.Fatalf("defense-only node missing budget detail: %s", out)
	}
}

func TestFmtBytes(t *testing.T) {
	for _, c := range []struct {
		v    int64
		want string
	}{
		{0, "0B"}, {512, "512B"}, {1 << 10, "1KiB"}, {4096, "4KiB"},
		{3 << 19, "1.5MiB"}, {1 << 30, "1GiB"},
	} {
		if got := FmtBytes(c.v); got != c.want {
			t.Fatalf("FmtBytes(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}
