// Package obs is the engine's observability layer: a thread-safe metrics
// registry and a per-query execution trace.
//
// Lehman & Carey validated every algorithm by "recording and examining the
// number of comparisons, the amount of data movement, the number of hash
// function calls, and other miscellaneous operations" (§3.1). The meter
// package carries that discipline inside operators; obs makes it visible
// outside unit tests: the Registry rolls per-query meter.Counters into an
// engine-wide atomic accumulator and adds the operational signals a
// serving system needs — queries by plan shape, rows scanned and returned,
// index probes per structure, lock waits, transaction outcomes, and log
// traffic — while QueryTrace records, per operator, the access path the
// planner chose, rows in/out, wall time, and the §3.1 counter deltas.
//
// Cost model: every Registry method is safe on a nil receiver and returns
// immediately, so a database opened with metrics disabled pays one
// predictable branch per event and allocates nothing (verified by
// BenchmarkObsOverhead / TestDisabledRegistryAllocs). With the registry
// enabled the hot path is a handful of uncontended atomic adds; the only
// lock is a short RWMutex read inside labeled counters, and snapshotting
// never stops writers.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meter"
)

// Registry is the engine-wide metrics accumulator. One Registry serves one
// Database; all methods are safe for concurrent use and safe on a nil
// receiver (the disabled state).
type Registry struct {
	// Query layer.
	queries      atomic.Int64
	rowsScanned  atomic.Int64
	rowsReturned atomic.Int64
	queryLatency Histogram
	planShapes   LabeledCounter
	indexProbes  LabeledCounter

	// Plan-vs-actual decision audit: mispredictions by decision name,
	// and the radix partition-skew distribution (max partition over mean;
	// 1.0 = perfectly balanced).
	planMispredicts LabeledCounter
	radixSkew       FloatHistogram

	// Concurrency control (internal/lock).
	lockWaits     atomic.Int64
	lockWaitNanos atomic.Int64
	deadlocks     atomic.Int64

	// Transactions (internal/txn).
	txnBegins  atomic.Int64
	txnCommits atomic.Int64
	txnAborts  atomic.Int64

	// Recovery log (internal/recovery).
	logAppends atomic.Int64
	logWords   atomic.Int64
	logFlushes atomic.Int64

	// §3.1 operation counters rolled up from internal/meter.
	ops meter.SharedCounters

	// schedSource, when non-nil, supplies the work-stealing morsel
	// scheduler's saturation snapshot at exposition time. Wired once by
	// Database.Open before the registry serves traffic; read without
	// synchronization afterwards (the same contract as txn.Manager.Obs).
	schedSource func() SchedStats

	// memSource supplies the memory grant manager's snapshot at
	// exposition time; same wiring contract as schedSource. Nil when no
	// memory budget is configured.
	memSource func() MemStats
}

// SchedStats mirrors the morsel scheduler's point-in-time saturation
// snapshot (internal/sched.Stats) as plain data, so obs carries no
// scheduler dependency. Workers/QueueDepth/Busy are gauges; Steals and
// Parks are monotonic counters.
type SchedStats struct {
	Workers    int   `json:"workers"`
	QueueDepth int64 `json:"queue_depth"`
	Busy       int64 `json:"busy"`
	Steals     int64 `json:"steals"`
	Parks      int64 `json:"parks"`
}

// SetSchedSource wires the scheduler-stats hook (see schedSource). Safe
// on a nil receiver.
func (r *Registry) SetSchedSource(fn func() SchedStats) {
	if r == nil {
		return
	}
	r.schedSource = fn
}

// MemStats mirrors the grant manager's point-in-time snapshot
// (internal/mem.Stats) as plain data, so obs carries no mem dependency.
// Total/Granted/Waiting are gauges; Forced, Reversals, and Repartitions
// are monotonic counters.
type MemStats struct {
	Total        int64 `json:"total"`
	Granted      int64 `json:"granted"`
	Waiting      int64 `json:"waiting"`
	Forced       int64 `json:"forced"`
	Reversals    int64 `json:"reversals"`
	Repartitions int64 `json:"repartitions"`
}

// SetMemSource wires the grant-manager-stats hook (see memSource). Safe
// on a nil receiver.
func (r *Registry) SetMemSource(fn func() MemStats) {
	if r == nil {
		return
	}
	r.memSource = fn
}

// NewRegistry creates an enabled registry with the default query-latency
// bucket layout (1µs … ~8s, doubling).
func NewRegistry() *Registry {
	r := &Registry{}
	r.queryLatency.init(DefaultLatencyBounds())
	r.radixSkew.init(DefaultSkewBounds())
	return r
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// RecordQuery accumulates one executed query: its plan shape (a compact
// label like "hash lookup→Hash Join"), base-relation tuples fetched, rows
// returned, total wall time, and the §3.1 operation counters its operators
// accumulated. Safe on a nil receiver.
func (r *Registry) RecordQuery(shape string, scanned, returned int64, wall time.Duration, ops meter.Counters) {
	if r == nil {
		return
	}
	r.queries.Add(1)
	r.rowsScanned.Add(scanned)
	r.rowsReturned.Add(returned)
	r.queryLatency.Observe(wall)
	r.planShapes.Add(shape, 1)
	r.ops.Add(ops)
}

// RecordDecision folds one plan-vs-actual audit record into the
// registry: a decision whose observed error crossed its threshold bumps
// mmdb_plan_mispredict_total{decision=...}. Safe on a nil receiver.
func (r *Registry) RecordDecision(d Decision) {
	if r == nil {
		return
	}
	if d.Mispredicted() {
		r.planMispredicts.Add(d.Name, 1)
	}
}

// MispredictCount returns the misprediction count for one decision name.
// Safe on a nil receiver.
func (r *Registry) MispredictCount(decision string) int64 {
	if r == nil {
		return 0
	}
	return r.planMispredicts.Get(decision)
}

// ObserveRadixSkew records one radix partitioning's skew (max partition
// size over mean). Safe on a nil receiver.
func (r *Registry) ObserveRadixSkew(skew float64) {
	if r == nil || skew <= 0 {
		return
	}
	r.radixSkew.Observe(skew)
}

// IndexProbe records n probes of a persistent index structure of the given
// kind (e.g. "TTree", "ModLinearHash"). Safe on a nil receiver.
func (r *Registry) IndexProbe(kind string, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.indexProbes.Add(kind, n)
}

// Meter returns the engine-wide §3.1 accumulator, for operators that want
// to add directly rather than through RecordQuery. Returns nil on a nil
// receiver (which SharedCounters methods tolerate).
func (r *Registry) Meter() *meter.SharedCounters {
	if r == nil {
		return nil
	}
	return &r.ops
}

// LockWait records one lock wait of duration d — the lock manager calls
// this whenever a request had to queue. Safe on a nil receiver.
func (r *Registry) LockWait(d time.Duration) {
	if r == nil {
		return
	}
	r.lockWaits.Add(1)
	r.lockWaitNanos.Add(int64(d))
}

// Deadlock records one deadlock-victim abort. Safe on a nil receiver.
func (r *Registry) Deadlock() {
	if r == nil {
		return
	}
	r.deadlocks.Add(1)
}

// TxnBegin records a transaction start. Safe on a nil receiver.
func (r *Registry) TxnBegin() {
	if r == nil {
		return
	}
	r.txnBegins.Add(1)
}

// TxnCommit records a transaction commit. Safe on a nil receiver.
func (r *Registry) TxnCommit() {
	if r == nil {
		return
	}
	r.txnCommits.Add(1)
}

// TxnAbort records a transaction abort. Safe on a nil receiver.
func (r *Registry) TxnAbort() {
	if r == nil {
		return
	}
	r.txnAborts.Add(1)
}

// LogAppend records one record written into the stable log buffer and its
// size in 4-byte words. Safe on a nil receiver.
func (r *Registry) LogAppend(words int) {
	if r == nil {
		return
	}
	r.logAppends.Add(1)
	r.logWords.Add(int64(words))
}

// LogFlush records the release of n committed records to the log device.
// Safe on a nil receiver.
func (r *Registry) LogFlush(records int) {
	if r == nil {
		return
	}
	r.logFlushes.Add(1)
	_ = records
}

// LabeledCounter is a set of atomic counters keyed by a small, low-
// cardinality label (plan shapes, index kinds). The common path — label
// already registered — takes one RWMutex read lock and one atomic add,
// with no allocation.
type LabeledCounter struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// Add increments the labelled counter by n.
func (c *LabeledCounter) Add(label string, n int64) {
	c.mu.RLock()
	ctr := c.m[label]
	c.mu.RUnlock()
	if ctr == nil {
		c.mu.Lock()
		if c.m == nil {
			c.m = make(map[string]*atomic.Int64)
		}
		if ctr = c.m[label]; ctr == nil {
			ctr = new(atomic.Int64)
			c.m[label] = ctr
		}
		c.mu.Unlock()
	}
	ctr.Add(n)
}

// Get returns the labelled counter's current value.
func (c *LabeledCounter) Get(label string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ctr := c.m[label]; ctr != nil {
		return ctr.Load()
	}
	return 0
}

// snapshot copies every label's value.
func (c *LabeledCounter) snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// sortedKeys returns map keys in deterministic order for exposition.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
