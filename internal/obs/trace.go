package obs

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/meter"
)

// TraceNode is one operator of an executed query plan: what the planner
// chose, how many rows flowed through, how long it took, and the §3.1
// operation counts it accumulated. Children are sub-operators (a join
// node's child is the selection feeding its outer side, and so on); the
// engine's two-table pipeline produces shallow trees, but the type is a
// general tree so future multi-way plans fit.
type TraceNode struct {
	Op         string        // operator: "select", "join", "project", "distinct"
	Detail     string        // human description: tables, columns, predicates
	AccessPath string        // the planner's choice: access path or join method
	RowsIn     int           // tuples entering the operator
	RowsOut    int           // rows the operator emitted
	Workers    int           // parallel workers used (0 or 1 = serial)
	Wall       time.Duration // operator wall time

	// Radix-execution detail, populated only when the operator ran on the
	// cache-conscious radix path: how many scatter passes the kernel
	// executed, the final partition fan-out, and the partition skew (max
	// partition size over mean; 1.0 = perfectly balanced).
	RadixPasses   int
	Partitions    int
	PartitionSkew float64

	// Memory-budget detail, populated only when the operator ran under a
	// grant-manager reservation: the peak bytes granted for this
	// operator's tables, and the dynamic-hybrid defense counts — pairs
	// whose build/probe roles were reversed, and fat partitions
	// recursively re-split. GrantBytes > 0 turns on the "budget:" trace
	// line even when both defenses stayed at zero.
	GrantBytes int64
	Reversed   int
	Resplits   int

	Ops      meter.Counters
	Children []*TraceNode
}

// Add appends a child operator and returns it.
func (n *TraceNode) Add(child *TraceNode) *TraceNode {
	n.Children = append(n.Children, child)
	return child
}

// QueryTrace is the execution trace of one query: the operator tree plus
// query-level totals. It is produced by Query.Analyze / EXPLAIN ANALYZE
// and describes what actually ran — every line is an executed operator,
// not an estimate.
type QueryTrace struct {
	Root  *TraceNode
	Total time.Duration // end-to-end wall time, including locking and planning

	// Decisions is the plan-vs-actual audit: one record per cost-model
	// choice the planner made (batch size, worker count, radix bits, sort
	// method), each comparing the estimate the choice rested on against
	// the observed value.
	Decisions []Decision

	// Morsel-scheduler costs for the whole query: morsels executed by a
	// worker other than the enqueuer, and time spent waiting for pool
	// admission. Zero when the query ran off-pool.
	SchedSteals int64
	SchedWait   time.Duration
}

// TotalOps sums the §3.1 counters over the whole tree.
func (t *QueryTrace) TotalOps() meter.Counters {
	var sum meter.Counters
	if t == nil {
		return sum
	}
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		if n == nil {
			return
		}
		sum.Add(n.Ops)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return sum
}

// Format renders the trace as an indented operator tree:
//
//	executed: 3 rows in 412µs (cmp=121 move=0 hash=41 ...)
//	├─ select emp: hash lookup on "dept"  rows in=10000 out=40  wall=120µs  [cmp=41 hash=1]
//	└─ join emp ⋈ dept: Hash Join  rows in=40 out=40  wall=80µs  [cmp=80 hash=40]
func (t *QueryTrace) Format() string {
	if t == nil || t.Root == nil {
		return "executed: (no trace)"
	}
	var b strings.Builder
	ops := t.TotalOps()
	fmt.Fprintf(&b, "executed: %d rows in %s", t.Root.RowsOut, fmtDur(t.Total))
	if ops != (meter.Counters{}) {
		fmt.Fprintf(&b, " (%s)", ops.String())
	}
	b.WriteByte('\n')
	if t.SchedSteals > 0 || t.SchedWait > 0 {
		fmt.Fprintf(&b, "sched: steals=%d waited=%s\n", t.SchedSteals, fmtDur(t.SchedWait))
	}
	for _, d := range t.Decisions {
		b.WriteString("decision ")
		b.WriteString(d.Line())
		b.WriteByte('\n')
	}
	for i, c := range t.Root.Children {
		writeNode(&b, c, "", i == len(t.Root.Children)-1)
	}
	return strings.TrimRight(b.String(), "\n")
}

func writeNode(b *strings.Builder, n *TraceNode, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	b.WriteString(prefix)
	b.WriteString(branch)
	b.WriteString(n.Line())
	b.WriteByte('\n')
	for i, c := range n.Children {
		writeNode(b, c, childPrefix, i == len(n.Children)-1)
	}
}

// Line renders one operator as a single line.
func (n *TraceNode) Line() string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	if n.AccessPath != "" {
		fmt.Fprintf(&b, ": %s", n.AccessPath)
	}
	fmt.Fprintf(&b, "  rows in=%d out=%d  wall=%s", n.RowsIn, n.RowsOut, fmtDur(n.Wall))
	if n.Workers > 1 {
		fmt.Fprintf(&b, "  workers=%d", n.Workers)
	}
	if n.Partitions > 0 {
		fmt.Fprintf(&b, "  radix: passes=%d parts=%d skew=%.2f", n.RadixPasses, n.Partitions, n.PartitionSkew)
	}
	if n.GrantBytes > 0 || n.Reversed > 0 || n.Resplits > 0 {
		fmt.Fprintf(&b, "  budget: grant=%s reversed=%d resplit=%d", FmtBytes(n.GrantBytes), n.Reversed, n.Resplits)
	}
	if n.Ops.SortPasses > 0 || n.Ops.SortRuns > 0 {
		// The normalized-key sort kernel ran inside this operator:
		// scatter passes, comparator-sorted runs, and key bytes encoded.
		fmt.Fprintf(&b, "  sort: passes=%d runs=%d keyB=%d", n.Ops.SortPasses, n.Ops.SortRuns, n.Ops.KeyBytes)
	}
	if n.Ops.Groups > 0 {
		// Grouped aggregation ran here: distinct groups out and the
		// open-addressing probe steps spent locating them.
		fmt.Fprintf(&b, "  agg: GroupsOut=%d AggTableProbes=%d", n.Ops.Groups, n.Ops.AggProbes)
	}
	if n.Ops.HeapPushes > 0 {
		// A bounded top-k heap ran here: each push is one sift through
		// the k-element heap, so pushes ≪ rows-in shows the cutoff working.
		fmt.Fprintf(&b, "  topk: HeapPushes=%d", n.Ops.HeapPushes)
	}
	if n.Ops != (meter.Counters{}) {
		fmt.Fprintf(&b, "  [%s]", compactOps(n.Ops))
	}
	return b.String()
}

// compactOps renders only the non-zero §3.1 counters.
func compactOps(c meter.Counters) string {
	parts := make([]string, 0, 9)
	add := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("cmp", c.Comparisons)
	add("move", c.DataMoves)
	add("hash", c.HashCalls)
	add("node", c.NodesVisited)
	add("alloc", c.Allocations)
	add("rot", c.Rotations)
	add("batch", c.Batches)
	add("rpass", c.RadixPasses)
	add("part", c.Partitions)
	add("spass", c.SortPasses)
	add("srun", c.SortRuns)
	add("keyB", c.KeyBytes)
	add("grp", c.Groups)
	add("aprobe", c.AggProbes)
	add("hpush", c.HeapPushes)
	if len(parts) == 0 {
		return "no ops"
	}
	return strings.Join(parts, " ")
}

// fmtDur rounds a duration to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
