package storage

// Epoch-based snapshot scans. A Snapshot is an immutable copy of a
// relation's live tuples, published under an epoch (the relation's DML
// sequence number at publication). Read-only queries whose access path
// is a full sequential scan read the published snapshot with no locks at
// all: writers never wait for analytical readers, and readers see a
// transaction-consistent image (publication happens at commit, under the
// writer's exclusive locks, after its deferred updates are applied).
//
// The copy is cheap to keep fresh: each partition tracks whether any DML
// touched it since the last publication, and a refresh clones only the
// dirty partitions, sharing the untouched clone arrays with the previous
// snapshot copy-on-write. Clone arrays preserve partition slot order, so
// a snapshot scan's row order is identical to a locked partition scan's.
//
// Snapshot tuples are copies, deliberately marked dead: feeding one back
// into an update or delete fails validation instead of silently writing
// through a stale image. Ref values inside a clone still point at the
// canonical (live) tuples, so pointer joins through snapshot rows stay
// consistent with tuple identity.

// Snapshot is one published relation image: per-partition clone arrays
// in partition order.
type Snapshot struct {
	epoch uint64
	parts [][]*Tuple
	rows  int
}

// Epoch returns the relation DML sequence number the snapshot captured.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Rows returns the number of tuples in the snapshot.
func (s *Snapshot) Rows() int { return s.rows }

// NumParts returns the number of partition clone arrays.
func (s *Snapshot) NumParts() int { return len(s.parts) }

// Part returns partition i's clone array (nil when it was empty).
func (s *Snapshot) Part(i int) []*Tuple { return s.parts[i] }

// SnapshotEpoch returns the relation's current DML sequence number — the
// epoch a snapshot published now would carry.
func (r *Relation) SnapshotEpoch() uint64 { return r.snapSeq.Load() }

// Snapshot returns the published snapshot if it is still fresh (no DML
// has landed since publication), nil otherwise. Lock-free; safe to call
// concurrently with publication.
func (r *Relation) Snapshot() *Snapshot {
	s := r.snap.Load()
	if s == nil || s.epoch != r.snapSeq.Load() {
		return nil
	}
	return s
}

// SnapshotLatest returns the most recently published snapshot with no
// freshness check, nil if none was ever published. The engine's query
// layer reads through this: every transaction commit republishes before
// releasing its exclusive locks (txn.Commit → RefreshSnapshot), so at
// that level an epoch mismatch can only mean a writer is mid-commit —
// and serving the previous publication is exactly snapshot isolation
// (the reader serializes before the in-flight writer). Callers that
// mutate relations directly without refreshing must use Snapshot(),
// which refuses stale images.
func (r *Relation) SnapshotLatest() *Snapshot { return r.snap.Load() }

// HasSnapshot reports whether a snapshot has ever been published —
// possibly stale. Commit uses it to decide whether a relation pays the
// refresh cost at all.
func (r *Relation) HasSnapshot() bool { return r.snap.Load() != nil }

// PublishSnapshot builds and publishes a snapshot at the current epoch,
// reusing the previous snapshot's clone arrays for partitions no DML
// touched. The caller must exclude writers for the duration — either a
// shared lock on the relation (the first reader's build) or the writer's
// own exclusive locks (the commit-time refresh). Concurrent publishers
// serialize on an internal mutex; a fresh snapshot returns immediately.
func (r *Relation) PublishSnapshot() *Snapshot {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	epoch := r.snapSeq.Load()
	prev := r.snap.Load()
	if prev != nil && prev.epoch == epoch {
		return prev
	}
	s := &Snapshot{epoch: epoch, parts: make([][]*Tuple, len(r.parts))}
	for i, p := range r.parts {
		if !p.snapDirty && prev != nil && i < len(prev.parts) {
			s.parts[i] = prev.parts[i]
		} else {
			s.parts[i] = r.clonePartition(p)
			p.snapDirty = false
		}
		s.rows += len(s.parts[i])
	}
	r.snap.Store(s)
	return s
}

// RefreshSnapshot republishes after a commit's updates, but only when a
// snapshot has ever been published — relations nobody snapshot-scans
// (bulk loads, write-only tables) pay nothing. Same locking contract as
// PublishSnapshot.
func (r *Relation) RefreshSnapshot() {
	if r.snap.Load() == nil {
		return
	}
	r.PublishSnapshot()
}

// clonePartition copies p's live tuples into a fresh clone array. The
// clones are carved from one header block and one value arena (two
// allocations per partition, not two per tuple) and are marked dead so
// write paths reject them.
func (r *Relation) clonePartition(p *Partition) []*Tuple {
	if p.live == 0 {
		return nil
	}
	headers := make([]Tuple, 0, p.live)
	arena := make([]Value, 0, p.live*r.schema.Arity())
	out := make([]*Tuple, 0, p.live)
	for _, t := range p.slots {
		if t == nil || t.dead || t.forward != nil {
			continue
		}
		off := len(arena)
		arena = append(arena, t.vals...)
		headers = append(headers, Tuple{
			id: t.id, part: p, slot: -1, dead: true,
			vals: arena[off:len(arena):len(arena)],
		})
		out = append(out, &headers[len(headers)-1])
	}
	return out
}
