package storage

import (
	"fmt"
	"testing"
)

func TestStatsEmptyRelation(t *testing.T) {
	r := newTestRelation(t, Config{})
	st := r.Stats()
	if st.Rows != 0 || st.SampledRows != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if len(st.NDV) != 2 {
		t.Fatalf("NDV arity = %d, want 2", len(st.NDV))
	}
}

func TestStatsExactOnSmallRelation(t *testing.T) {
	r := newTestRelation(t, Config{})
	for i := 0; i < 100; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(i % 7)), StringValue(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Rows != 100 || st.SampledRows != 100 {
		t.Fatalf("stats = %+v, want full sample of 100 rows", st)
	}
	if st.NDV[0] != 7 {
		t.Errorf("NDV[id] = %v, want exact 7", st.NDV[0])
	}
	if st.NDV[1] != 100 {
		t.Errorf("NDV[name] = %v, want exact 100", st.NDV[1])
	}
}

func TestStatsSampledScaleUp(t *testing.T) {
	r := newTestRelation(t, Config{})
	n := 8192
	for i := 0; i < n; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(i % 10)), StringValue(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.SampledRows >= n {
		t.Fatalf("sampled %d rows, expected a strided subset of %d", st.SampledRows, n)
	}
	// Low-cardinality column: every sample sees all 10 values, jackknife
	// must not inflate them.
	if st.NDV[0] < 8 || st.NDV[0] > 20 {
		t.Errorf("NDV[id] = %v, want ≈10", st.NDV[0])
	}
	// Unique column: the scale-up must land near the row count.
	if st.NDV[1] < float64(n)/2 || st.NDV[1] > float64(n) {
		t.Errorf("NDV[name] = %v, want ≈%d", st.NDV[1], n)
	}
}

func TestStatsLazyRefresh(t *testing.T) {
	r := newTestRelation(t, Config{})
	for i := 0; i < 1000; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(i)), StringValue("x")}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Rows != 1000 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	// A handful of inserts stays under the staleness threshold: the
	// snapshot must be reused untouched.
	for i := 0; i < 10; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(1000 + i)), StringValue("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if st2 := r.Stats(); st2.Rows != 1000 {
		t.Fatalf("stats refreshed after %d writes (Rows = %d), want cached 1000", 10, st2.Rows)
	}
	// Crossing the threshold (10% of rows, min 256) must refresh.
	for i := 0; i < 300; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(2000 + i)), StringValue("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if st3 := r.Stats(); st3.Rows != 1310 {
		t.Fatalf("stats stale after threshold (Rows = %d), want 1310", st3.Rows)
	}
}

func TestStatsRefreshOnDelete(t *testing.T) {
	r := newTestRelation(t, Config{})
	var tuples []*Tuple
	for i := 0; i < 600; i++ {
		tu, err := r.Insert([]Value{IntValue(int64(i)), StringValue("x")})
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tu)
	}
	if st := r.Stats(); st.Rows != 600 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	for _, tu := range tuples[:300] {
		if err := r.Delete(tu); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Rows != 300 {
		t.Fatalf("Rows = %d after deletes, want refreshed 300", st.Rows)
	}
}

func TestStatsSkipsNulls(t *testing.T) {
	r := newTestRelation(t, Config{})
	for i := 0; i < 10; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(i)), NullValue}); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.NDV[1] != 0 {
		t.Fatalf("NDV over all-null column = %v, want 0", st.NDV[1])
	}
}
