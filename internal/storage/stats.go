package storage

import (
	"sync"
	"sync/atomic"
)

// Per-relation statistics for the cost-based planners: row count plus a
// sampled per-column distinct-value estimate. The numbers are cheap by
// design — a join-order forecast needs magnitudes, not exactness — and
// refresh lazily: a snapshot is reused until enough DML has landed to
// plausibly move it, so steady-state queries never pay a sampling scan.

// TableStats is one relation's statistics snapshot.
type TableStats struct {
	Name string
	// Rows is the exact live-tuple count at refresh time.
	Rows int
	// NDV estimates the number of distinct non-null values per column,
	// in schema field order. Exact when the refresh sampled every row;
	// otherwise a first-order jackknife scale-up of the sample.
	NDV []float64
	// SampledRows is how many tuples the refresh examined.
	SampledRows int
}

// relStats is the cached snapshot plus its invalidation bookkeeping.
type relStats struct {
	mu    sync.Mutex
	dml   atomic.Int64 // inserts+deletes+updates since relation creation
	dmlAt int64        // dml value when cached was taken
	cache TableStats
	valid bool
}

const (
	// statsSampleRows caps the tuples one refresh examines.
	statsSampleRows = 1024
	// statsMinDelta is the smallest DML count that can invalidate a
	// snapshot; below it, re-sampling churn would dwarf the drift.
	statsMinDelta = 256
)

// statsDirty reports whether enough DML landed since the last refresh:
// 10% of the relation, floored at statsMinDelta writes.
func statsDirty(rows int, delta int64) bool {
	threshold := int64(rows / 10)
	if threshold < statsMinDelta {
		threshold = statsMinDelta
	}
	return delta >= threshold
}

// noteDML records one mutating operation; called from Insert, Delete,
// and Update under the engine's exclusive table lock, but atomic so
// lock-free readers (metrics exposition, snapshot freshness checks)
// stay race-clean. The snapshot epoch advances with it, invalidating
// any published snapshot until the next publication (snapshot.go).
func (r *Relation) noteDML() {
	r.stats.dml.Add(1)
	r.snapSeq.Add(1)
}

// Stats returns the relation's statistics, refreshing the cached
// snapshot when it has never been taken or when DML since the last
// refresh crosses the staleness threshold. Callers must hold at least
// a shared table lock (the same contract as scanning).
func (r *Relation) Stats() TableStats {
	s := &r.stats
	s.mu.Lock()
	defer s.mu.Unlock()
	dml := s.dml.Load()
	if !s.valid || statsDirty(s.cache.Rows, dml-s.dmlAt) {
		s.cache = r.sampleStats()
		s.dmlAt = dml
		s.valid = true
	}
	out := s.cache
	out.NDV = append([]float64(nil), s.cache.NDV...)
	return out
}

// CachedStats returns the last-taken snapshot without refreshing it —
// planning paths that must stay lock-free (EXPLAIN) use it, accepting
// staleness over taking table locks. ok is false when no snapshot has
// ever been taken; no tuples are touched either way.
func (r *Relation) CachedStats() (TableStats, bool) {
	s := &r.stats
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid {
		return TableStats{Name: r.name}, false
	}
	out := s.cache
	out.NDV = append([]float64(nil), s.cache.NDV...)
	return out, true
}

// sampleHit decides whether physical row i joins the sample: roughly
// one in stride rows, chosen by Fibonacci-hashing the position rather
// than a plain modulus so the sample never beats against periodic data
// (a stride-8 sweep over a column cycling mod 10 would only ever see
// the even values). Deterministic, so refreshes are reproducible.
func sampleHit(i, stride int) bool {
	if stride <= 1 {
		return true
	}
	x := uint64(i) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	return x%uint64(stride) == 0
}

// sampleStats scans the live tuples, sampling ~statsSampleRows of them
// (see sampleHit), and estimates per-column distinct counts from
// value hashes. Columns seen mostly-once in the sample scale up by the
// first-order jackknife D = d + (N/n − 1)·f1; low-cardinality columns
// keep their observed count.
func (r *Relation) sampleStats() TableStats {
	arity := r.schema.Arity()
	st := TableStats{Name: r.name, Rows: r.count, NDV: make([]float64, arity)}
	if r.count == 0 {
		return st
	}
	stride := r.count / statsSampleRows
	if stride < 1 {
		stride = 1
	}
	counts := make([]map[uint64]uint8, arity)
	for f := range counts {
		counts[f] = make(map[uint64]uint8)
	}
	seen := 0
	r.ScanPhysical(func(t *Tuple) bool {
		if sampleHit(seen, stride) {
			st.SampledRows++
			for f := 0; f < arity; f++ {
				v := t.Field(f)
				if v.IsNull() {
					continue
				}
				h := Hash(v)
				if c := counts[f][h]; c < 2 {
					counts[f][h] = c + 1
				}
			}
		}
		seen++
		return true
	})
	for f, m := range counts {
		d := float64(len(m))
		if st.SampledRows < st.Rows {
			f1 := 0.0
			for _, c := range m {
				if c == 1 {
					f1++
				}
			}
			d += (float64(st.Rows)/float64(st.SampledRows) - 1) * f1
		}
		if d > float64(st.Rows) {
			d = float64(st.Rows)
		}
		st.NDV[f] = d
	}
	return st
}
