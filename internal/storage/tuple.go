package storage

import "fmt"

// Tuple is a row of a relation. Tuples are referred to directly by memory
// address (§2.1): once entered into the database a tuple never changes
// location, so a *Tuple held by an index or a temporary list stays valid
// until the tuple is deleted. The one exception the paper allows — a
// growing variable-length field overflowing its partition's heap space —
// moves the tuple and leaves a forwarding address in its old position
// (footnote 1); Resolve follows that chain.
type Tuple struct {
	id      uint64
	part    *Partition
	slot    int
	dead    bool
	forward *Tuple
	vals    []Value
}

// Canonical resolves forwarding addresses, yielding the tuple's identity;
// it is the comparison two *Tuple handles must agree on to denote the same
// logical tuple.
func (t *Tuple) Canonical() *Tuple { return t.Resolve() }

// ID returns the tuple's database-unique identifier. IDs are stable across
// save/load, which is how Ref values are swizzled by the recovery codec.
func (t *Tuple) ID() uint64 { return t.Resolve().id }

// Partition returns the partition holding the tuple.
func (t *Tuple) Partition() *Partition { return t.Resolve().part }

// Arity returns the number of fields.
func (t *Tuple) Arity() int { return len(t.Resolve().vals) }

// Field returns the value of field i.
func (t *Tuple) Field(i int) Value { return t.Resolve().vals[i] }

// Values returns a copy of all field values.
func (t *Tuple) Values() []Value {
	r := t.Resolve()
	return append([]Value(nil), r.vals...)
}

// Resolve follows forwarding addresses to the tuple's current location.
// It returns the receiver when the tuple has never moved. Resolve on a nil
// tuple returns nil.
func (t *Tuple) Resolve() *Tuple {
	for t != nil && t.forward != nil {
		t = t.forward
	}
	return t
}

// Live reports whether the tuple is still part of its relation.
func (t *Tuple) Live() bool {
	r := t.Resolve()
	return r != nil && !r.dead
}

// heapBytes returns the partition heap space the tuple's values occupy.
func (t *Tuple) heapBytes() int {
	n := 0
	for _, v := range t.vals {
		n += v.HeapBytes()
	}
	return n
}

// String renders the tuple's values for display.
func (t *Tuple) String() string {
	r := t.Resolve()
	return fmt.Sprintf("tuple(%d)%v", r.id, r.vals)
}
