package storage

import "fmt"

// ColRef names one output column of a temporary list: field Field of the
// Source-th tuple pointer in each row.
type ColRef struct {
	Source int    // position within the row's tuple-pointer vector
	Field  int    // field within that source tuple
	Name   string // display name
}

// Descriptor is a temporary list's result descriptor (§2.3): it identifies
// which fields of the source tuples are part of the result, taking the
// place of projection — no width reduction is ever done, tuples are only
// pointed to.
type Descriptor struct {
	Sources []string // names of the source relations, one per row slot
	Cols    []ColRef
}

// Validate checks internal consistency.
func (d Descriptor) Validate() error {
	if len(d.Sources) == 0 {
		return fmt.Errorf("storage: descriptor needs at least one source")
	}
	for _, c := range d.Cols {
		if c.Source < 0 || c.Source >= len(d.Sources) {
			return fmt.Errorf("storage: column %q references source %d of %d", c.Name, c.Source, len(d.Sources))
		}
	}
	return nil
}

// ColIndex returns the position of the named output column, or -1.
func (d Descriptor) ColIndex(name string) int {
	for i, c := range d.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row is one entry of a temporary list: a vector of tuple pointers, one
// per source relation (a selection result has one, a two-way join result
// has two, and so on).
type Row []*Tuple

// TempList is the MM-DBMS intermediate-result structure (§2.3): a list of
// tuple-pointer rows plus a result descriptor. Unlike relations, temporary
// lists may be traversed directly; they can also be indexed.
//
// Concurrency contract: a TempList is single-writer. Parallel operators
// must not share one list across workers — each worker appends to a
// private list and the lists are combined with MergeLists (or Absorb)
// after the workers join. Freeze seals a list against further appends,
// after which Rows is a safe zero-copy view.
type TempList struct {
	desc   Descriptor
	rows   []Row
	frozen bool
}

// NewTempList creates an empty temporary list with the given descriptor.
func NewTempList(desc Descriptor) (*TempList, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	return &TempList{desc: desc}, nil
}

// MustTempList is NewTempList that panics on error; for tests and examples.
func MustTempList(desc Descriptor) *TempList {
	l, err := NewTempList(desc)
	if err != nil {
		panic(err)
	}
	return l
}

// Descriptor returns the result descriptor.
func (l *TempList) Descriptor() Descriptor { return l.desc }

// Len returns the number of rows.
func (l *TempList) Len() int { return len(l.rows) }

// Append adds a row. The row must have one pointer per source. Appending
// to a frozen list is a programming error and panics.
func (l *TempList) Append(row Row) {
	if l.frozen {
		panic("storage: append to frozen TempList")
	}
	if len(row) != len(l.desc.Sources) {
		panic(fmt.Sprintf("storage: row arity %d does not match %d sources", len(row), len(l.desc.Sources)))
	}
	l.rows = append(l.rows, row)
}

// Row returns row i.
func (l *TempList) Row(i int) Row { return l.rows[i] }

// Rows returns a stable view of the rows. For a frozen list this is the
// backing slice (zero copy); otherwise it is a snapshot, because handing
// out the live backing slice of a growing list is an aliasing bug — a
// later Append may reallocate and the caller silently keeps reading the
// abandoned array (a data race under parallel emit).
func (l *TempList) Rows() []Row {
	if l.frozen {
		return l.rows
	}
	return l.Snapshot()
}

// Snapshot returns a copy of the current rows that later Appends cannot
// disturb.
func (l *TempList) Snapshot() []Row {
	out := make([]Row, len(l.rows))
	copy(out, l.rows)
	return out
}

// Freeze seals the list: further Appends panic, and Rows becomes a safe
// zero-copy view. Operators freeze their output before handing it to
// concurrent readers. Freeze is idempotent; it returns the list for
// chaining.
func (l *TempList) Freeze() *TempList {
	l.frozen = true
	return l
}

// Frozen reports whether the list has been sealed.
func (l *TempList) Frozen() bool { return l.frozen }

// Absorb appends every row of other. Both lists must have the same source
// arity; the descriptor columns are taken from l. The per-worker parallel
// append path builds one private TempList per worker and absorbs them in
// worker order, so no mutex ever guards an Append.
func (l *TempList) Absorb(other *TempList) {
	if l.frozen {
		panic("storage: absorb into frozen TempList")
	}
	if len(other.desc.Sources) != len(l.desc.Sources) {
		panic(fmt.Sprintf("storage: absorb arity %d does not match %d sources",
			len(other.desc.Sources), len(l.desc.Sources)))
	}
	l.rows = append(l.rows, other.rows...)
}

// MergeLists combines per-worker partial results into one list with the
// given descriptor, in slice order, pre-sizing the row vector once. Nil
// partials are skipped.
func MergeLists(desc Descriptor, parts []*TempList) (*TempList, error) {
	out, err := NewTempList(desc)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, p := range parts {
		if p != nil {
			n += len(p.rows)
		}
	}
	out.rows = make([]Row, 0, n)
	for _, p := range parts {
		if p != nil {
			out.Absorb(p)
		}
	}
	return out, nil
}

// Scan visits rows in order until fn returns false.
func (l *TempList) Scan(fn func(i int, row Row) bool) {
	for i, row := range l.rows {
		if !fn(i, row) {
			return
		}
	}
}

// Value extracts output column c of row i by dereferencing the relevant
// tuple pointer.
func (l *TempList) Value(i, c int) Value {
	col := l.desc.Cols[c]
	return l.rows[i][col.Source].Field(col.Field)
}

// RowValues materializes all output columns of row i. This is the only
// point at which data is copied out of the source tuples — the final
// delivery of a query result.
func (l *TempList) RowValues(i int) []Value {
	out := make([]Value, len(l.desc.Cols))
	for c := range l.desc.Cols {
		out[c] = l.Value(i, c)
	}
	return out
}

// ColumnNames returns the output column names in order.
func (l *TempList) ColumnNames() []string {
	names := make([]string, len(l.desc.Cols))
	for i, c := range l.desc.Cols {
		names[i] = c.Name
	}
	return names
}
