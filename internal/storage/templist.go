package storage

import "fmt"

// ColRef names one output column of a temporary list: field Field of the
// Source-th tuple pointer in each row.
type ColRef struct {
	Source int    // position within the row's tuple-pointer vector
	Field  int    // field within that source tuple
	Name   string // display name
}

// Descriptor is a temporary list's result descriptor (§2.3): it identifies
// which fields of the source tuples are part of the result, taking the
// place of projection — no width reduction is ever done, tuples are only
// pointed to.
type Descriptor struct {
	Sources []string // names of the source relations, one per row slot
	Cols    []ColRef
}

// Validate checks internal consistency.
func (d Descriptor) Validate() error {
	if len(d.Sources) == 0 {
		return fmt.Errorf("storage: descriptor needs at least one source")
	}
	for _, c := range d.Cols {
		if c.Source < 0 || c.Source >= len(d.Sources) {
			return fmt.Errorf("storage: column %q references source %d of %d", c.Name, c.Source, len(d.Sources))
		}
	}
	return nil
}

// ColIndex returns the position of the named output column, or -1.
func (d Descriptor) ColIndex(name string) int {
	for i, c := range d.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row is one entry of a temporary list: a vector of tuple pointers, one
// per source relation (a selection result has one, a two-way join result
// has two, and so on). Rows handed out by a TempList are views into its
// arena chunks: valid until the list is Reset or Released.
type Row []*Tuple

// ChunkRows is the number of rows per TempList arena chunk. It equals
// BatchSize so a single-source list's chunks double as scan blocks, and
// it is a power of two so row addressing is a shift and a mask.
const (
	ChunkRows  = BatchSize
	chunkShift = 8 // log2(ChunkRows)
	chunkMask  = ChunkRows - 1
)

// TempList is the MM-DBMS intermediate-result structure (§2.3): a list of
// tuple-pointer rows plus a result descriptor. Unlike relations, temporary
// lists may be traversed directly; they can also be indexed.
//
// Storage layout: rows live in chunked, arena-style segments — flat
// blocks of ChunkRows rows × arity tuple pointers, recycled through a
// sync.Pool. Appending never moves existing rows (no regrow-copy: a full
// chunk is simply followed by a fresh one), so row views stay valid
// across appends, and the single-row fast paths (AppendOne, AppendPair)
// write straight into the current chunk without allocating a Row header.
//
// Concurrency contract: a TempList is single-writer. Parallel operators
// must not share one list across workers — each worker appends to a
// private list and the lists are combined with MergeLists (or Absorb)
// after the workers join. Freeze seals a list against further appends,
// after which Rows is a safe zero-copy view.
type TempList struct {
	desc   Descriptor
	arity  int
	chunks [][]*Tuple // all full chunks hold exactly ChunkRows rows; only the last may be partial
	n      int        // total rows
	frozen bool
	flat   []Row // row-header view, materialized by Freeze
}

// NewTempList creates an empty temporary list with the given descriptor.
func NewTempList(desc Descriptor) (*TempList, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	return &TempList{desc: desc, arity: len(desc.Sources)}, nil
}

// NewTempListHint creates an empty temporary list pre-sized for hint
// rows: the chunk directory is allocated once (appends never regrow it),
// and a hint below ChunkRows gets a single exact-fit chunk so small
// results — point lookups, LIMIT queries — do not pin a full pooled
// chunk. Lists overrun their hint gracefully; it is a hint, not a cap.
func NewTempListHint(desc Descriptor, hint int) (*TempList, error) {
	l, err := NewTempList(desc)
	if err != nil {
		return nil, err
	}
	if hint > 0 {
		nchunks := (hint + ChunkRows - 1) / ChunkRows
		l.chunks = make([][]*Tuple, 0, nchunks)
		if hint < ChunkRows {
			l.chunks = append(l.chunks, make([]*Tuple, 0, hint*l.arity))
		}
	}
	return l, nil
}

// MustTempList is NewTempList that panics on error; for tests and examples.
func MustTempList(desc Descriptor) *TempList {
	l, err := NewTempList(desc)
	if err != nil {
		panic(err)
	}
	return l
}

// MustTempListHint is NewTempListHint that panics on error.
func MustTempListHint(desc Descriptor, hint int) *TempList {
	l, err := NewTempListHint(desc, hint)
	if err != nil {
		panic(err)
	}
	return l
}

// Descriptor returns the result descriptor.
func (l *TempList) Descriptor() Descriptor { return l.desc }

// Len returns the number of rows.
func (l *TempList) Len() int { return l.n }

// Arity returns the number of source slots per row.
func (l *TempList) Arity() int { return l.arity }

// room returns the index of a chunk with space for at least one more row,
// growing the arena as needed. A filled exact-fit chunk (from a small
// CapacityHint) is migrated to a full pooled chunk so the layout stays
// uniform: every chunk but the last holds exactly ChunkRows rows.
func (l *TempList) room() int {
	last := len(l.chunks) - 1
	if last >= 0 {
		c := l.chunks[last]
		if len(c)+l.arity <= cap(c) {
			return last
		}
		if len(c) < ChunkRows*l.arity {
			full := append(getChunk(l.arity), c...)
			l.chunks[last] = full
			return last
		}
	}
	l.chunks = append(l.chunks, getChunk(l.arity))
	return last + 1
}

// Append adds a row, copying its tuple pointers into the arena. The row
// must have one pointer per source; the caller keeps ownership of the
// slice (it is not retained, so stack-allocated rows never escape).
// Appending to a frozen list is a programming error and panics.
func (l *TempList) Append(row Row) {
	if l.frozen {
		panic("storage: append to frozen TempList")
	}
	if len(row) != l.arity {
		panic(fmt.Sprintf("storage: row arity %d does not match %d sources", len(row), l.arity))
	}
	i := l.room()
	l.chunks[i] = append(l.chunks[i], row...)
	l.n++
}

// AppendOne is the zero-allocation single-source fast path: the selection
// emit `Append(Row{t})` without the Row header. Panics unless the list
// has exactly one source.
func (l *TempList) AppendOne(t *Tuple) {
	if l.frozen {
		panic("storage: append to frozen TempList")
	}
	if l.arity != 1 {
		panic(fmt.Sprintf("storage: AppendOne on a list with %d sources", l.arity))
	}
	i := l.room()
	l.chunks[i] = append(l.chunks[i], t)
	l.n++
}

// AppendPair is the zero-allocation two-source fast path: the join emit
// `Append(Row{o, i})` without the Row header. Panics unless the list has
// exactly two sources.
func (l *TempList) AppendPair(o, i *Tuple) {
	if l.frozen {
		panic("storage: append to frozen TempList")
	}
	if l.arity != 2 {
		panic(fmt.Sprintf("storage: AppendPair on a list with %d sources", l.arity))
	}
	c := l.room()
	l.chunks[c] = append(l.chunks[c], o, i)
	l.n++
}

// AppendBatch block-copies a batch of tuples into a single-source list —
// the emit path of batched selection. Panics unless the list has exactly
// one source.
func (l *TempList) AppendBatch(ts []*Tuple) {
	if l.frozen {
		panic("storage: append to frozen TempList")
	}
	if l.arity != 1 {
		panic(fmt.Sprintf("storage: AppendBatch on a list with %d sources", l.arity))
	}
	l.appendFlat(ts)
}

// appendFlat copies a flat run of tuple pointers (a multiple of arity)
// into the arena, splitting across chunk boundaries with block copies.
func (l *TempList) appendFlat(src []*Tuple) {
	for len(src) > 0 {
		i := l.room()
		c := l.chunks[i]
		space := cap(c) - len(c)
		if space > len(src) {
			space = len(src)
		}
		space -= space % l.arity
		l.chunks[i] = append(c, src[:space]...)
		src = src[space:]
		l.n += space / l.arity
	}
}

// Row returns row i as a view into the arena (valid until Reset/Release).
func (l *TempList) Row(i int) Row {
	c := l.chunks[i>>chunkShift]
	off := (i & chunkMask) * l.arity
	return c[off : off+l.arity : off+l.arity]
}

// Rows returns a stable view of the rows. For a frozen list this is the
// materialized backing slice (zero copy); otherwise it is a snapshot,
// so a caller never observes a view that a later Append could disturb.
func (l *TempList) Rows() []Row {
	if l.frozen {
		return l.flat
	}
	return l.Snapshot()
}

// Snapshot returns a copy of the current row headers that later Appends
// cannot disturb. (The headers view arena chunks, and chunks never move:
// appending past a full chunk starts a new one instead of reallocating.)
func (l *TempList) Snapshot() []Row {
	out := make([]Row, 0, l.n)
	a := l.arity
	for _, c := range l.chunks {
		for off := 0; off < len(c); off += a {
			out = append(out, c[off:off+a:off+a])
		}
	}
	return out
}

// Freeze seals the list: further Appends panic, and Rows becomes a safe
// zero-copy view (the row-header slice is materialized once, here, so
// concurrent readers of a frozen list never race on lazy state).
// Operators freeze their output before handing it to concurrent readers.
// Freeze is idempotent; it returns the list for chaining.
func (l *TempList) Freeze() *TempList {
	if !l.frozen {
		l.flat = l.Snapshot()
		l.frozen = true
	}
	return l
}

// Frozen reports whether the list has been sealed.
func (l *TempList) Frozen() bool { return l.frozen }

// Reset empties an unfrozen list for reuse, recycling its arena chunks
// back to the pool. All outstanding row views become invalid.
func (l *TempList) Reset() {
	if l.frozen {
		panic("storage: reset of frozen TempList")
	}
	for i, c := range l.chunks {
		putChunk(c, l.arity)
		l.chunks[i] = nil
	}
	l.chunks = l.chunks[:0]
	l.n = 0
}

// Release recycles the list's arena chunks back to the pool and empties
// it. The caller asserts that no row views (Row, Rows, Scan callbacks,
// ScanColumnBatches blocks) are outstanding — the pooled memory will be
// reused by other lists. Operators release intermediate lists whose rows
// have been copied onward; a list handed to a caller is never released.
func (l *TempList) Release() {
	for i, c := range l.chunks {
		putChunk(c, l.arity)
		l.chunks[i] = nil
	}
	l.chunks = nil
	l.flat = nil
	l.n = 0
}

// Absorb appends every row of other (block copies, chunk by chunk). Both
// lists must have the same source arity; the descriptor columns are taken
// from l. The per-worker parallel append path builds one private TempList
// per worker and absorbs them in worker order, so no mutex ever guards an
// Append.
func (l *TempList) Absorb(other *TempList) {
	if l.frozen {
		panic("storage: absorb into frozen TempList")
	}
	if other.arity != l.arity {
		panic(fmt.Sprintf("storage: absorb arity %d does not match %d sources",
			other.arity, l.arity))
	}
	for _, c := range other.chunks {
		l.appendFlat(c)
	}
}

// MergeLists combines per-worker partial results into one list with the
// given descriptor, in slice order, pre-sizing the arena once. Nil
// partials are skipped. The partials remain valid and untouched; use
// MergeListsRecycle when they are private scratch that can be recycled.
func MergeLists(desc Descriptor, parts []*TempList) (*TempList, error) {
	n := 0
	for _, p := range parts {
		if p != nil {
			n += p.n
		}
	}
	out, err := NewTempListHint(desc, n)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p != nil {
			out.Absorb(p)
		}
	}
	return out, nil
}

// MergeListsRecycle is MergeLists for partials that are private worker
// scratch: after each partial's rows are copied into the result, its
// arena chunks are released back to the pool and the partial is emptied.
// The parts must have no outstanding row views.
func MergeListsRecycle(desc Descriptor, parts []*TempList) (*TempList, error) {
	n := 0
	for _, p := range parts {
		if p != nil {
			n += p.n
		}
	}
	out, err := NewTempListHint(desc, n)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p != nil {
			out.Absorb(p)
			p.Release()
		}
	}
	return out, nil
}

// Scan visits rows in order until fn returns false. The row passed to fn
// is a view into the arena; copy it (or its pointers) to retain it.
func (l *TempList) Scan(fn func(i int, row Row) bool) {
	i := 0
	a := l.arity
	for _, c := range l.chunks {
		for off := 0; off < len(c); off += a {
			if !fn(i, c[off:off+a:off+a]) {
				return
			}
			i++
		}
	}
}

// ScanColumnBatches visits one source column of every row in blocks — the
// batched counterpart of scanning a ListColumn tuple by tuple. For
// single-source lists the arena chunks are handed out directly (zero
// copy); wider rows gather the column into buf (a pooled batch is used
// when buf has no capacity). Blocks are views; they are invalid after fn
// returns false or the scan ends.
func (l *TempList) ScanColumnBatches(col int, buf TupleBatch, fn func(block []*Tuple) bool) {
	if col < 0 || col >= l.arity {
		panic(fmt.Sprintf("storage: column %d out of %d sources", col, l.arity))
	}
	if l.arity == 1 {
		for _, c := range l.chunks {
			if len(c) == 0 {
				continue
			}
			if !fn(c) {
				return
			}
		}
		return
	}
	if cap(buf) == 0 {
		buf = GetBatch()
		defer PutBatch(buf)
	}
	buf = buf[:0]
	a := l.arity
	for _, c := range l.chunks {
		for off := col; off < len(c); off += a {
			buf = append(buf, c[off])
			if len(buf) == cap(buf) {
				if !fn(buf) {
					return
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		fn(buf)
	}
}

// Value extracts output column c of row i by dereferencing the relevant
// tuple pointer.
func (l *TempList) Value(i, c int) Value {
	col := l.desc.Cols[c]
	return l.Row(i)[col.Source].Field(col.Field)
}

// GatherColumn copies output column c of rows [lo, hi) into out, which
// must have length hi-lo. The chunk walk hoists the per-row chunk lookup
// out of the inner loop, so batched consumers (grouped aggregation, key
// encoding) pay one tuple dereference per value instead of a full row
// resolution per value.
func (l *TempList) GatherColumn(c, lo, hi int, out []Value) {
	col := l.desc.Cols[c]
	src, f := col.Source, col.Field
	a := l.arity
	j := 0
	for i := lo; i < hi; {
		ch := l.chunks[i>>chunkShift]
		rows := len(ch)/a - (i & chunkMask)
		if rem := hi - i; rows > rem {
			rows = rem
		}
		off := (i&chunkMask)*a + src
		for r := 0; r < rows; r++ {
			out[j] = ch[off].Field(f)
			off += a
			j++
		}
		i += rows
	}
}

// GatherColumnRows copies output column c of the given rows into out,
// which must have length len(rows) — the scattered-row counterpart of
// GatherColumn for partitioned consumers.
func (l *TempList) GatherColumnRows(c int, rows []int32, out []Value) {
	col := l.desc.Cols[c]
	src, f := col.Source, col.Field
	a := l.arity
	for j, r := range rows {
		i := int(r)
		out[j] = l.chunks[i>>chunkShift][(i&chunkMask)*a+src].Field(f)
	}
}

// RowValues materializes all output columns of row i. This is the only
// point at which data is copied out of the source tuples — the final
// delivery of a query result.
func (l *TempList) RowValues(i int) []Value {
	out := make([]Value, len(l.desc.Cols))
	row := l.Row(i)
	for c, col := range l.desc.Cols {
		out[c] = row[col.Source].Field(col.Field)
	}
	return out
}

// ColumnNames returns the output column names in order.
func (l *TempList) ColumnNames() []string {
	names := make([]string, len(l.desc.Cols))
	for i, c := range l.desc.Cols {
		names[i] = c.Name
	}
	return names
}
