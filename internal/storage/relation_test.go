package storage

import (
	"fmt"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		FieldDef{Name: "id", Type: Int},
		FieldDef{Name: "name", Type: Str},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestRelation(t *testing.T, cfg Config) *Relation {
	t.Helper()
	r, err := NewRelation("emp", testSchema(t), cfg, NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(FieldDef{Name: "", Type: Int}); err == nil {
		t.Error("empty field name accepted")
	}
	if _, err := NewSchema(FieldDef{Name: "a", Type: Int}, FieldDef{Name: "a", Type: Str}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewSchema(FieldDef{Name: "d", Type: Int, ForeignKey: "dept"}); err == nil {
		t.Error("non-ref foreign key accepted")
	}
	s, err := NewSchema(FieldDef{Name: "d", Type: Ref, ForeignKey: "dept"})
	if err != nil {
		t.Fatalf("valid FK schema rejected: %v", err)
	}
	if s.Field(0).ForeignKey != "dept" {
		t.Error("FK target lost")
	}
}

func TestSchemaFieldIndex(t *testing.T) {
	s := testSchema(t)
	if s.FieldIndex("name") != 1 || s.FieldIndex("id") != 0 {
		t.Error("FieldIndex wrong")
	}
	if s.FieldIndex("missing") != -1 {
		t.Error("missing field should be -1")
	}
	if s.Arity() != 2 {
		t.Error("arity wrong")
	}
}

func TestInsertDeleteLifecycle(t *testing.T) {
	r := newTestRelation(t, Config{})
	var tuples []*Tuple
	for i := 0; i < 100; i++ {
		tp, err := r.Insert([]Value{IntValue(int64(i)), StringValue(fmt.Sprintf("n%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tp)
	}
	if r.Cardinality() != 100 {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	// Every tuple readable through its stable pointer.
	for i, tp := range tuples {
		if tp.Field(0).Int() != int64(i) {
			t.Fatalf("tuple %d corrupted", i)
		}
		if !tp.Live() {
			t.Fatalf("tuple %d not live", i)
		}
	}
	// IDs unique.
	seen := map[uint64]bool{}
	for _, tp := range tuples {
		if seen[tp.ID()] {
			t.Fatalf("duplicate ID %d", tp.ID())
		}
		seen[tp.ID()] = true
	}
	// Delete half.
	for i := 0; i < 50; i++ {
		if err := r.Delete(tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if r.Cardinality() != 50 {
		t.Fatalf("cardinality after deletes = %d", r.Cardinality())
	}
	if tuples[0].Live() {
		t.Error("deleted tuple still live")
	}
	if err := r.Delete(tuples[0]); err == nil {
		t.Error("double delete accepted")
	}
	// Physical scan sees exactly the survivors.
	n := 0
	r.ScanPhysical(func(tp *Tuple) bool { n++; return true })
	if n != 50 {
		t.Fatalf("scan saw %d tuples, want 50", n)
	}
}

func TestInsertValidatesSchema(t *testing.T) {
	r := newTestRelation(t, Config{})
	if _, err := r.Insert([]Value{IntValue(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := r.Insert([]Value{StringValue("x"), StringValue("y")}); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := r.Insert([]Value{NullValue, NullValue}); err != nil {
		t.Errorf("nulls rejected: %v", err)
	}
}

func TestSlotReuse(t *testing.T) {
	r := newTestRelation(t, Config{SlotsPerPartition: 8})
	var ts []*Tuple
	for i := 0; i < 8; i++ {
		tp, _ := r.Insert([]Value{IntValue(int64(i)), NullValue})
		ts = append(ts, tp)
	}
	if len(r.Partitions()) != 1 {
		t.Fatalf("want 1 partition, got %d", len(r.Partitions()))
	}
	for _, tp := range ts {
		if err := r.Delete(tp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(100 + i)), NullValue}); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Partitions()) != 1 {
		t.Fatalf("slots not reused: %d partitions", len(r.Partitions()))
	}
}

func TestPartitionGrowth(t *testing.T) {
	r := newTestRelation(t, Config{SlotsPerPartition: 10})
	for i := 0; i < 95; i++ {
		if _, err := r.Insert([]Value{IntValue(int64(i)), NullValue}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.Partitions()); got != 10 {
		t.Fatalf("want 10 partitions, got %d", got)
	}
	total := 0
	for _, p := range r.Partitions() {
		total += p.Live()
	}
	if total != 95 {
		t.Fatalf("partition live counts sum to %d", total)
	}
}

func TestHeapAccountingAndOverflowForwarding(t *testing.T) {
	// Tiny heap so a growing string forces a tuple move with forwarding.
	r := newTestRelation(t, Config{SlotsPerPartition: 4, HeapPerPartition: 20})
	t1, err := r.Insert([]Value{IntValue(1), StringValue("0123456789")}) // 10 heap bytes
	if err != nil {
		t.Fatal(err)
	}
	p0 := t1.Partition()
	if p0.HeapUsed() != 10 {
		t.Fatalf("heap used = %d", p0.HeapUsed())
	}
	t2, err := r.Insert([]Value{IntValue(2), StringValue("abcdefgh")}) // 8 more
	if err != nil {
		t.Fatal(err)
	}
	if t2.Partition() != p0 {
		t.Fatal("second tuple should share the partition")
	}
	// Grow t2's string beyond the partition heap: must move + forward.
	big := strings.Repeat("x", 15)
	if err := r.Update(t2, 1, StringValue(big)); err != nil {
		t.Fatal(err)
	}
	if t2.Field(1).Str() != big {
		t.Fatal("update lost")
	}
	if t2.Resolve() == t2 {
		t.Fatal("expected tuple to be moved (forwarded)")
	}
	if t2.ID() != t2.Resolve().ID() {
		t.Fatal("move changed the tuple ID")
	}
	if p0.HeapUsed() != 10 {
		t.Fatalf("old partition should only hold t1's 10 bytes, has %d", p0.HeapUsed())
	}
	// The old pointer still works for reads and further updates.
	if err := r.Update(t2, 0, IntValue(99)); err != nil {
		t.Fatal(err)
	}
	if t2.Field(0).Int() != 99 {
		t.Fatal("update through forwarded pointer lost")
	}
	// Scan must see the tuple exactly once.
	n := 0
	r.ScanPhysical(func(tp *Tuple) bool {
		if tp.ID() == t2.ID() {
			n++
		}
		return true
	})
	if n != 1 {
		t.Fatalf("moved tuple seen %d times in scan", n)
	}
	// Deleting via the stale pointer removes the real tuple.
	if err := r.Delete(t2); err != nil {
		t.Fatal(err)
	}
	if t2.Live() {
		t.Fatal("tuple live after delete via forwarded pointer")
	}
	if r.Cardinality() != 1 {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
}

func TestUpdateShrinkReleasesHeap(t *testing.T) {
	r := newTestRelation(t, Config{HeapPerPartition: 100})
	tp, _ := r.Insert([]Value{IntValue(1), StringValue("0123456789")})
	if err := r.Update(tp, 1, StringValue("01")); err != nil {
		t.Fatal(err)
	}
	if got := tp.Partition().HeapUsed(); got != 2 {
		t.Fatalf("heap used = %d, want 2", got)
	}
}

func TestUpdateErrors(t *testing.T) {
	r := newTestRelation(t, Config{})
	tp, _ := r.Insert([]Value{IntValue(1), StringValue("a")})
	if err := r.Update(tp, 5, IntValue(1)); err == nil {
		t.Error("out-of-range field accepted")
	}
	if err := r.Update(tp, 0, StringValue("x")); err == nil {
		t.Error("wrong type accepted")
	}
	r.Delete(tp)
	if err := r.Update(tp, 0, IntValue(2)); err == nil {
		t.Error("update of dead tuple accepted")
	}
}

type recordingObserver struct {
	inserted, deleted, updating, updated int
	preValue                             Value // field value observed during TupleUpdating
	lastOld                              []Value
}

func (o *recordingObserver) TupleInserted(*Tuple) { o.inserted++ }
func (o *recordingObserver) TupleDeleted(*Tuple)  { o.deleted++ }

func (o *recordingObserver) TupleUpdating(t *Tuple, f int, _ Value) {
	o.updating++
	o.preValue = t.Field(f)
}

func (o *recordingObserver) TupleUpdated(_ *Tuple, old []Value) {
	o.updated++
	o.lastOld = old
}

func TestObserverNotifications(t *testing.T) {
	r := newTestRelation(t, Config{})
	var obs recordingObserver
	r.Observe(&obs)
	tp, _ := r.Insert([]Value{IntValue(1), StringValue("a")})
	r.Update(tp, 1, StringValue("b"))
	r.Delete(tp)
	if obs.inserted != 1 || obs.updating != 1 || obs.updated != 1 || obs.deleted != 1 {
		t.Fatalf("observer saw %+v", obs)
	}
	if len(obs.lastOld) != 2 || obs.lastOld[1].Str() != "a" {
		t.Fatalf("old values wrong: %v", obs.lastOld)
	}
	// TupleUpdating must run pre-mutation: the observed value is the old one.
	if obs.preValue.Str() != "a" {
		t.Fatalf("TupleUpdating saw post-update value %v", obs.preValue)
	}
}

func TestCrossRelationGuards(t *testing.T) {
	ids := NewIDGen()
	r1, _ := NewRelation("a", testSchema(t), Config{}, ids)
	r2, _ := NewRelation("b", testSchema(t), Config{}, ids)
	tp, _ := r1.Insert([]Value{IntValue(1), NullValue})
	if err := r2.Delete(tp); err == nil {
		t.Error("cross-relation delete accepted")
	}
	if err := r2.Update(tp, 0, IntValue(2)); err == nil {
		t.Error("cross-relation update accepted")
	}
}

func TestIDGenReserve(t *testing.T) {
	g := NewIDGen()
	g.Reserve(100)
	if id := g.Next(); id != 101 {
		t.Fatalf("Next after Reserve(100) = %d", id)
	}
	g.Reserve(50) // no-op backwards
	if id := g.Next(); id != 102 {
		t.Fatalf("Next after backwards Reserve = %d", id)
	}
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("", testSchema(t), Config{}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRelation("x", nil, Config{}, nil); err == nil {
		t.Error("nil schema accepted")
	}
}
