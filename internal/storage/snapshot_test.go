package storage

import (
	"fmt"
	"testing"
)

// snapRelation builds a relation with small partitions (8 slots) so a
// modest row count spans several partitions, and inserts n rows
// (id=i, name="n<i>").
func snapRelation(t *testing.T, n int) (*Relation, []*Tuple) {
	t.Helper()
	r := newTestRelation(t, Config{SlotsPerPartition: 8})
	tuples := make([]*Tuple, 0, n)
	for i := 0; i < n; i++ {
		tp, err := r.Insert([]Value{IntValue(int64(i)), StringValue(fmt.Sprintf("n%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tp)
	}
	return r, tuples
}

func TestSnapshotPublishAndFreshness(t *testing.T) {
	r, _ := snapRelation(t, 40)
	if r.Snapshot() != nil {
		t.Fatal("snapshot before any publication")
	}
	if r.HasSnapshot() {
		t.Fatal("HasSnapshot before any publication")
	}
	r.PublishSnapshot()
	s := r.Snapshot()
	if s == nil {
		t.Fatal("no snapshot after publication")
	}
	if s.Rows() != 40 {
		t.Fatalf("snapshot rows = %d, want 40", s.Rows())
	}
	if s.Epoch() != r.SnapshotEpoch() {
		t.Fatalf("snapshot epoch %d != relation epoch %d", s.Epoch(), r.SnapshotEpoch())
	}

	// Any DML staleness the snapshot: Snapshot() refuses to hand it out.
	if _, err := r.Insert([]Value{IntValue(1000), NullValue}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("stale snapshot handed out after DML")
	}
	// RefreshSnapshot republishes because one was published before.
	r.RefreshSnapshot()
	if s2 := r.Snapshot(); s2 == nil || s2.Rows() != 41 {
		t.Fatalf("refresh produced %+v, want 41 rows", s2)
	}
}

func TestSnapshotRefreshIsNoOpBeforeFirstPublish(t *testing.T) {
	r, _ := snapRelation(t, 10)
	r.RefreshSnapshot()
	if r.HasSnapshot() {
		t.Fatal("RefreshSnapshot published on a relation nobody snapshot-scans")
	}
}

// TestSnapshotCOWReuse verifies the publisher re-clones only partitions
// DML touched: untouched partitions share the previous snapshot's clone
// arrays (same backing array), touched ones get fresh clones.
func TestSnapshotCOWReuse(t *testing.T) {
	r, tuples := snapRelation(t, 40) // 5 partitions of 8
	r.PublishSnapshot()
	prev := r.Snapshot()
	if prev == nil || prev.NumParts() < 3 {
		t.Fatalf("want >=3 partitions, got %+v", prev)
	}

	// Touch only the partition holding tuples[0] (an in-place update —
	// same-size heap footprint is irrelevant for Int).
	if err := r.Update(tuples[0], 0, IntValue(-1)); err != nil {
		t.Fatal(err)
	}
	r.PublishSnapshot()
	next := r.Snapshot()
	if next == nil {
		t.Fatal("no snapshot after republication")
	}
	dirtyPart := tuples[0].Partition().ID()
	for i := 0; i < next.NumParts() && i < prev.NumParts(); i++ {
		a, b := prev.Part(i), next.Part(i)
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		shared := &a[0] == &b[0]
		if i == dirtyPart && shared {
			t.Fatalf("partition %d was touched but its clone array was reused", i)
		}
		if i != dirtyPart && !shared {
			t.Fatalf("partition %d untouched but re-cloned (COW miss)", i)
		}
	}
	// The re-cloned partition reflects the update.
	found := false
	for _, tp := range next.Part(dirtyPart) {
		if tp.Field(0).Int() == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("republished snapshot does not reflect the update")
	}
}

// TestSnapshotClonesAreImmutable verifies snapshot tuples are value
// copies, decoupled from later DML, and marked dead so transactional
// writes through a snapshot handle fail commit validation.
func TestSnapshotClonesAreImmutable(t *testing.T) {
	r, tuples := snapRelation(t, 20)
	r.PublishSnapshot()
	s := r.Snapshot()

	var clone *Tuple
	for i := 0; i < s.NumParts(); i++ {
		for _, tp := range s.Part(i) {
			if tp.ID() == tuples[3].ID() {
				clone = tp
			}
		}
	}
	if clone == nil {
		t.Fatal("tuple 3 missing from snapshot")
	}
	if clone.Live() {
		t.Fatal("snapshot clone reports Live; txn validation would accept writes through it")
	}
	before := clone.Field(1).Str()
	if err := r.Update(tuples[3], 1, StringValue("mutated")); err != nil {
		t.Fatal(err)
	}
	if got := clone.Field(1).Str(); got != before {
		t.Fatalf("snapshot clone changed under DML: %q -> %q", before, got)
	}

	// Row-order identity: the snapshot enumerates the same tuples, in the
	// same order, as a locked physical scan at the same epoch.
	r.PublishSnapshot()
	s = r.Snapshot()
	var live []uint64
	r.ScanPhysical(func(tp *Tuple) bool {
		live = append(live, tp.ID())
		return true
	})
	var snap []uint64
	for i := 0; i < s.NumParts(); i++ {
		for _, tp := range s.Part(i) {
			snap = append(snap, tp.ID())
		}
	}
	if len(live) != len(snap) {
		t.Fatalf("snapshot has %d tuples, live scan %d", len(snap), len(live))
	}
	for i := range live {
		if live[i] != snap[i] {
			t.Fatalf("row order diverges at %d: live %d snapshot %d", i, live[i], snap[i])
		}
	}
}

// TestSnapshotSkipsDeleted verifies deletes dirty the partition and the
// next publication drops the tuple.
func TestSnapshotSkipsDeleted(t *testing.T) {
	r, tuples := snapRelation(t, 16)
	r.PublishSnapshot()
	if err := r.Delete(tuples[5]); err != nil {
		t.Fatal(err)
	}
	r.PublishSnapshot()
	s := r.Snapshot()
	if s.Rows() != 15 {
		t.Fatalf("snapshot rows = %d, want 15", s.Rows())
	}
	for i := 0; i < s.NumParts(); i++ {
		for _, tp := range s.Part(i) {
			if tp.ID() == tuples[5].ID() {
				t.Fatal("deleted tuple survives in republished snapshot")
			}
		}
	}
}
