// Package storage implements the MM-DBMS storage architecture of Lehman &
// Carey (SIGMOD 1986, §2): relations broken into partitions (the unit of
// recovery), tuples referred to by stable pointers, variable-length fields
// kept in per-partition heap space, foreign keys replaced by tuple-pointer
// fields to enable precomputed joins, and temporary lists (tuple-pointer
// rows plus a result descriptor) for intermediate query results.
package storage

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies the runtime type of a Value.
type Type uint8

// Field types supported by the MM-DBMS.
const (
	Null  Type = iota // absent value
	Int               // 64-bit signed integer
	Float             // 64-bit IEEE float
	Str               // variable-length string (partition heap space)
	Bool              // boolean
	Ref               // tuple pointer (precomputed-join foreign key)
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Null:
		return "null"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Bool:
		return "bool"
	case Ref:
		return "ref"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a single attribute value. The zero Value is Null.
//
// Values are small and passed by copy. A Ref value holds a tuple pointer;
// per §2.2 the MM-DBMS substitutes tuple pointers for foreign-key values,
// so joins on Ref fields compare pointers rather than data.
type Value struct {
	typ Type
	num uint64 // Int: int64 bits; Float: IEEE bits; Bool: 0/1
	str string
	ref *Tuple
}

// NullValue is the Null constant.
var NullValue = Value{}

// IntValue returns an Int value.
func IntValue(v int64) Value { return Value{typ: Int, num: uint64(v)} }

// FloatValue returns a Float value.
func FloatValue(v float64) Value { return Value{typ: Float, num: math.Float64bits(v)} }

// StringValue returns a Str value.
func StringValue(v string) Value { return Value{typ: Str, str: v} }

// BoolValue returns a Bool value.
func BoolValue(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{typ: Bool, num: n}
}

// RefValue returns a Ref (tuple pointer) value. A nil tuple yields Null.
func RefValue(t *Tuple) Value {
	if t == nil {
		return NullValue
	}
	return Value{typ: Ref, ref: t}
}

// Type returns the value's runtime type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is Null.
func (v Value) IsNull() bool { return v.typ == Null }

// Int returns the integer payload. It panics if the value is not an Int.
func (v Value) Int() int64 {
	v.mustBe(Int)
	return int64(v.num)
}

// Float returns the float payload. It panics if the value is not a Float.
func (v Value) Float() float64 {
	v.mustBe(Float)
	return math.Float64frombits(v.num)
}

// Str returns the string payload. It panics if the value is not a Str.
func (v Value) Str() string {
	v.mustBe(Str)
	return v.str
}

// Bool returns the boolean payload. It panics if the value is not a Bool.
func (v Value) Bool() bool {
	v.mustBe(Bool)
	return v.num != 0
}

// Ref returns the referenced tuple, following any forwarding addresses left
// behind when a tuple overflowed its partition's heap space (§2.1 footnote
// 1). It panics if the value is not a Ref.
func (v Value) Ref() *Tuple {
	v.mustBe(Ref)
	return v.ref.Resolve()
}

// rawRef returns the referenced tuple without following forwarding
// pointers; used by the codec so forwarding structure round-trips.
func (v Value) rawRef() *Tuple {
	v.mustBe(Ref)
	return v.ref
}

func (v Value) mustBe(t Type) {
	if v.typ != t {
		v.typeMismatch(t)
	}
}

// typeMismatch is outlined from mustBe so the typed accessors (Int, Float,
// Str, …) stay inlinable: the panic's fmt call would otherwise push mustBe
// over the inlining budget and put a real function call — with a 40-byte
// receiver copy — on every field access in every operator hot loop. The
// noinline keeps the compiler from folding the panic body back in.
//
//go:noinline
func (v Value) typeMismatch(t Type) {
	panic(fmt.Sprintf("storage: value is %s, not %s", v.typ, t))
}

// Compare orders two values. Null sorts before everything; otherwise the
// values must have the same type or Compare panics (the schema layer
// rejects mixed-type comparisons before execution). Ref values compare by
// tuple identity (equal/unequal ordered by tuple ID), which is what makes
// the pointer-based join of §2.1 Query 2 work.
func Compare(a, b Value) int {
	if a.typ == Null || b.typ == Null {
		switch {
		case a.typ == b.typ:
			return 0
		case a.typ == Null:
			return -1
		default:
			return 1
		}
	}
	if a.typ != b.typ {
		panic(fmt.Sprintf("storage: cannot compare %s with %s", a.typ, b.typ))
	}
	switch a.typ {
	case Int:
		return cmpOrdered(int64(a.num), int64(b.num))
	case Float:
		return cmpFloat(math.Float64frombits(a.num), math.Float64frombits(b.num))
	case Str:
		return cmpOrdered(a.str, b.str)
	case Bool:
		return cmpOrdered(a.num, b.num)
	case Ref:
		ra, rb := a.ref.Resolve(), b.ref.Resolve()
		if ra == rb {
			return 0
		}
		return cmpOrdered(ra.ID(), rb.ID())
	default:
		panic(fmt.Sprintf("storage: cannot compare %s values", a.typ))
	}
}

// cmpFloat is a total order over float64: -0 equals +0, and NaN sorts
// after every other value (and equal to itself), so index invariants hold
// for any float input.
func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	default:
		return cmpOrdered(a, b)
	}
}

func cmpOrdered[T int64 | uint64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal without panicking on type
// mismatch (mismatched types are simply unequal). The Int/Int fast path is
// kept small enough to inline into probe loops — a group-by or join probe
// on integer keys pays two compares instead of a call with two 40-byte
// receiver copies per row.
func Equal(a, b Value) bool {
	if a.typ == Int && b.typ == Int {
		return a.num == b.num
	}
	return equalSlow(a, b)
}

// equalSlow handles every case the inlined fast path doesn't, including
// type mismatch. The noinline keeps it from being folded back into Equal.
//
//go:noinline
func equalSlow(a, b Value) bool {
	if a.typ != b.typ {
		return false
	}
	switch a.typ {
	case Null:
		return true
	case Ref:
		return a.ref.Resolve() == b.ref.Resolve()
	case Str:
		return a.str == b.str
	case Float:
		return cmpFloat(math.Float64frombits(a.num), math.Float64frombits(b.num)) == 0
	default:
		return a.num == b.num
	}
}

// Hash returns a 64-bit hash of the value, consistent with Equal.
func Hash(v Value) uint64 {
	if v.typ == Str || v.typ == Ref || v.typ == Float || v.typ == Null {
		return hashSlow(v)
	}
	return mix64(v.num) ^ uint64(v.typ)<<56
}

// HashFold folds per-value hashes into hs column-at-a-time:
// hs[i] = (hs[i] ^ Hash(vals[i])) * FNV-prime — one FNV-1a step per value,
// bit-identical to the fold in exec.KeyHash. Living inside the package
// lets the scalar hash inline into the loop body, so the common Int/Bool
// key pays no call per row.
func HashFold(vals []Value, hs []uint64) {
	if len(hs) < len(vals) {
		panic("storage: HashFold output shorter than input")
	}
	for i := range vals {
		v := vals[i]
		var hv uint64
		if v.typ == Str || v.typ == Ref || v.typ == Float || v.typ == Null {
			hv = hashSlow(v)
		} else {
			hv = mix64(v.num) ^ uint64(v.typ)<<56
		}
		hs[i] = (hs[i] ^ hv) * 1099511628211
	}
}

//go:noinline
func hashSlow(v Value) uint64 {
	switch v.typ {
	case Null:
		return 0x9e3779b97f4a7c15
	case Str:
		// Open-coded FNV-1a (identical to hash/fnv's sum): the stdlib
		// hasher costs an interface allocation-shaped call pair per value,
		// which is pure overhead at one call per row in hash loops.
		h := uint64(14695981039346656037)
		for i := 0; i < len(v.str); i++ {
			h ^= uint64(v.str[i])
			h *= 1099511628211
		}
		return h
	case Ref:
		return mix64(v.ref.Resolve().ID())
	case Float:
		// Normalize -0.0 to +0.0 and all NaN payloads to one NaN so Equal
		// floats hash equally.
		bits := v.num
		f := math.Float64frombits(bits)
		if f == 0 {
			bits = 0
		} else if math.IsNaN(f) {
			bits = math.Float64bits(math.NaN())
		}
		return mix64(bits) ^ 0xa5a5a5a5
	default:
		return mix64(v.num) ^ uint64(v.typ)<<56
	}
}

// mix64 is the SplitMix64 finalizer, a strong cheap integer mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HeapBytes returns the number of bytes the value occupies in a
// partition's heap space. Fixed-width values live inline in the tuple and
// take no heap space; strings are stored in the heap (§2.1).
func (v Value) HeapBytes() int {
	if v.typ == Str {
		return len(v.str)
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.typ {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(int64(v.num), 10)
	case Float:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case Str:
		return v.str
	case Bool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case Ref:
		r := v.ref.Resolve()
		return fmt.Sprintf("ref(%d)", r.ID())
	default:
		return "?"
	}
}
