package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := IntValue(-42); v.Type() != Int || v.Int() != -42 {
		t.Errorf("IntValue: %v", v)
	}
	if v := FloatValue(3.5); v.Type() != Float || v.Float() != 3.5 {
		t.Errorf("FloatValue: %v", v)
	}
	if v := StringValue("hi"); v.Type() != Str || v.Str() != "hi" {
		t.Errorf("StringValue: %v", v)
	}
	if v := BoolValue(true); v.Type() != Bool || !v.Bool() {
		t.Errorf("BoolValue: %v", v)
	}
	if !NullValue.IsNull() {
		t.Error("NullValue not null")
	}
	if v := RefValue(nil); !v.IsNull() {
		t.Error("RefValue(nil) should be Null")
	}
}

func TestValueAccessorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IntValue(1).Str()
}

func TestCompareWithinTypes(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{IntValue(-5), IntValue(5), -1},
		{FloatValue(1.5), FloatValue(2.5), -1},
		{FloatValue(2.5), FloatValue(2.5), 0},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("b"), 0},
		{StringValue("ba"), StringValue("b"), 1},
		{BoolValue(false), BoolValue(true), -1},
		{BoolValue(true), BoolValue(true), 0},
		{NullValue, IntValue(0), -1},
		{IntValue(0), NullValue, 1},
		{NullValue, NullValue, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMixedTypesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare(IntValue(1), StringValue("1"))
}

func TestEqualAcrossTypesIsFalseNotPanic(t *testing.T) {
	if Equal(IntValue(1), StringValue("1")) {
		t.Error("int 1 should not equal string \"1\"")
	}
	if !Equal(NullValue, NullValue) {
		t.Error("null must equal null")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{IntValue(7), IntValue(7)},
		{StringValue("abc"), StringValue("abc")},
		{FloatValue(0.0), FloatValue(math.Copysign(0, -1))}, // +0 vs -0
		{BoolValue(true), BoolValue(true)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("expected %v == %v", p[0], p[1])
			continue
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("equal values hash differently: %v %v", p[0], p[1])
		}
	}
}

func TestHashPropertyIntEquality(t *testing.T) {
	f := func(a, b int64) bool {
		ha, hb := Hash(IntValue(a)), Hash(IntValue(b))
		if a == b {
			return ha == hb
		}
		return true // inequality says nothing about hashes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashSpreadsSequentialInts(t *testing.T) {
	// Sequential keys are the workload generator's common case; make sure
	// the mixer doesn't collapse them into few buckets.
	const n, buckets = 10000, 64
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[Hash(IntValue(int64(i)))%buckets]++
	}
	for b, c := range counts {
		if c < n/buckets/4 || c > n/buckets*4 {
			t.Fatalf("bucket %d has %d of %d items — poor spread", b, c, n)
		}
	}
}

func TestHeapBytes(t *testing.T) {
	if IntValue(1).HeapBytes() != 0 || FloatValue(1).HeapBytes() != 0 || BoolValue(true).HeapBytes() != 0 {
		t.Error("fixed-width values must use no heap space")
	}
	if StringValue("hello").HeapBytes() != 5 {
		t.Error("string heap bytes must equal length")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": NullValue,
		"42":   IntValue(42),
		"2.5":  FloatValue(2.5),
		"hi":   StringValue("hi"),
		"true": BoolValue(true),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Type(), got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		Null: "null", Int: "int", Float: "float", Str: "string", Bool: "bool", Ref: "ref",
	} {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}
