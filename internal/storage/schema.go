package storage

import "fmt"

// FieldDef describes one attribute of a relation.
type FieldDef struct {
	Name string
	Type Type
	// ForeignKey names the relation this field references. Per §2.1, the
	// MM-DBMS substitutes a tuple-pointer field for an identified foreign
	// key, so a ForeignKey field holds Ref values at runtime and enables
	// precomputed joins. Empty for ordinary fields.
	ForeignKey string
}

// Schema is an ordered list of field definitions.
type Schema struct {
	fields []FieldDef
	byName map[string]int
}

// NewSchema builds a schema from field definitions. Field names must be
// non-empty and unique; foreign-key fields must be declared with type Ref.
func NewSchema(fields ...FieldDef) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("storage: schema needs at least one field")
	}
	s := &Schema{
		fields: append([]FieldDef(nil), fields...),
		byName: make(map[string]int, len(fields)),
	}
	for i, f := range s.fields {
		if f.Name == "" {
			return nil, fmt.Errorf("storage: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate field %q", f.Name)
		}
		if f.ForeignKey != "" && f.Type != Ref {
			return nil, fmt.Errorf("storage: foreign-key field %q must have type ref, got %s", f.Name, f.Type)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and examples.
func MustSchema(fields ...FieldDef) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of fields.
func (s *Schema) Arity() int { return len(s.fields) }

// Field returns the definition of field i.
func (s *Schema) Field(i int) FieldDef { return s.fields[i] }

// Fields returns a copy of all field definitions.
func (s *Schema) Fields() []FieldDef { return append([]FieldDef(nil), s.fields...) }

// FieldIndex returns the position of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Validate checks that vals conforms to the schema: correct arity and each
// non-null value of the declared type (Ref for foreign keys).
func (s *Schema) Validate(vals []Value) error {
	if len(vals) != len(s.fields) {
		return fmt.Errorf("storage: got %d values for %d fields", len(vals), len(s.fields))
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		if v.Type() != s.fields[i].Type {
			return fmt.Errorf("storage: field %q wants %s, got %s", s.fields[i].Name, s.fields[i].Type, v.Type())
		}
	}
	return nil
}
