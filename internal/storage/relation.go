package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IDGen issues database-unique tuple identifiers.
type IDGen struct{ next uint64 }

// NewIDGen returns a generator whose first ID is 1.
func NewIDGen() *IDGen { return &IDGen{next: 0} }

// Next returns the next unique ID.
func (g *IDGen) Next() uint64 { return atomic.AddUint64(&g.next, 1) }

// Reserve advances the generator so it never reissues IDs at or below id;
// the recovery loader calls this after reloading tuples with saved IDs.
func (g *IDGen) Reserve(id uint64) {
	for {
		cur := atomic.LoadUint64(&g.next)
		if cur >= id {
			return
		}
		if atomic.CompareAndSwapUint64(&g.next, cur, id) {
			return
		}
	}
}

// Observer is notified of tuple-level changes; the engine registers index
// maintainers and the recovery log writer through this interface.
type Observer interface {
	TupleInserted(t *Tuple)
	// TupleDeleted fires before the slot is reclaimed; t is still readable.
	TupleDeleted(t *Tuple)
	// TupleUpdating fires before field f changes to v, while the tuple
	// still carries its old values — the window in which an index can
	// locate the entry by its current key.
	TupleUpdating(t *Tuple, f int, v Value)
	// TupleUpdated fires after the change; old holds the prior field values.
	TupleUpdated(t *Tuple, old []Value)
}

// Relation is a memory-resident relation: a schema plus a set of
// partitions. Relations are not directly traversable by queries — all
// query access is through an index (§2.1); ScanPhysical exists for index
// construction and recovery only.
type Relation struct {
	name         string
	schema       *Schema
	cfg          Config
	parts        []*Partition
	count        int
	ids          *IDGen
	observers    []Observer
	insertChecks []func(vals []Value) error
	updateChecks []func(t *Tuple, f int, v Value) error

	// Tuple headers and field arrays are carved from chunked slabs rather
	// than allocated one heap object apiece. Consecutively inserted tuples
	// land adjacent in memory, so a scan or column gather in row order
	// touches sequential cache lines instead of chasing two dependent
	// pointer misses per value — the in-memory analogue of the paper's
	// per-partition heap space (§2.1). Chunks are fixed once handed out
	// (append never grows a full chunk), so &chunk[i] stays stable for the
	// tuple's lifetime, preserving the tuple-pointer contract.
	tslab    []Tuple
	varena   []Value
	slabRows int // chunk size in tuples, doubling up to slabMaxRows

	// stats caches the sampled statistics snapshot (see stats.go).
	stats relStats

	// Epoch-based snapshot publication (see snapshot.go): the published
	// image, the DML sequence number stamping its freshness, and the
	// mutex serializing publishers.
	snap    atomic.Pointer[Snapshot]
	snapSeq atomic.Uint64
	snapMu  sync.Mutex
}

// AddInsertCheck registers a validator run before every insert; a non-nil
// error rejects the insert. The engine uses this to enforce unique
// indices at the storage layer, where every write path converges.
func (r *Relation) AddInsertCheck(fn func(vals []Value) error) {
	r.insertChecks = append(r.insertChecks, fn)
}

// AddUpdateCheck registers a validator run before every field update.
func (r *Relation) AddUpdateCheck(fn func(t *Tuple, f int, v Value) error) {
	r.updateChecks = append(r.updateChecks, fn)
}

// NewRelation creates an empty relation. ids may be shared across
// relations so tuple IDs are database-unique (required for Ref values).
func NewRelation(name string, schema *Schema, cfg Config, ids *IDGen) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: relation name must be non-empty")
	}
	if schema == nil {
		return nil, fmt.Errorf("storage: relation %q needs a schema", name)
	}
	if ids == nil {
		ids = NewIDGen()
	}
	return &Relation{name: name, schema: schema, cfg: cfg.withDefaults(), ids: ids}, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Cardinality returns the number of live tuples.
func (r *Relation) Cardinality() int { return r.count }

// Partitions returns the relation's partitions; the lock manager and
// recovery manager operate at this granularity.
func (r *Relation) Partitions() []*Partition { return r.parts }

// Observe registers an observer for tuple changes.
func (r *Relation) Observe(o Observer) { r.observers = append(r.observers, o) }

// Slab chunk sizing: small relations shouldn't pay for bulk chunks, so
// chunks start at slabMinRows tuples and double per chunk up to
// slabMaxRows.
const (
	slabMinRows = 16
	slabMaxRows = 4096
)

// newTuple carves a tuple header and its field array out of the
// relation's slabs, copying vals. The returned pointer is stable: a chunk
// is retired (never appended to again) the moment it fills, so no append
// can ever move an element a caller holds a pointer into.
func (r *Relation) newTuple(id uint64, vals []Value) *Tuple {
	if len(r.tslab) == cap(r.tslab) {
		if r.slabRows < slabMaxRows {
			if r.slabRows == 0 {
				r.slabRows = slabMinRows
			} else {
				r.slabRows *= 2
			}
		}
		r.tslab = make([]Tuple, 0, r.slabRows)
		r.varena = make([]Value, 0, r.slabRows*r.schema.Arity())
	}
	off := len(r.varena)
	r.varena = append(r.varena, vals...)
	r.tslab = append(r.tslab, Tuple{id: id, vals: r.varena[off:len(r.varena):len(r.varena)]})
	return &r.tslab[len(r.tslab)-1]
}

// Insert validates vals against the schema, stores a new tuple in a
// partition with room, and notifies observers. The returned pointer is
// stable for the tuple's lifetime.
func (r *Relation) Insert(vals []Value) (*Tuple, error) {
	if err := r.schema.Validate(vals); err != nil {
		return nil, fmt.Errorf("insert into %s: %w", r.name, err)
	}
	for _, check := range r.insertChecks {
		if err := check(vals); err != nil {
			return nil, fmt.Errorf("insert into %s: %w", r.name, err)
		}
	}
	t := r.newTuple(r.ids.Next(), vals)
	r.placeTuple(t)
	r.count++
	r.noteDML()
	for _, o := range r.observers {
		o.TupleInserted(t)
	}
	return t, nil
}

// placeTuple finds (or creates) a partition with room and places t there.
func (r *Relation) placeTuple(t *Tuple) {
	need := t.heapBytes()
	for i := len(r.parts) - 1; i >= 0; i-- {
		if r.parts[i].hasRoomFor(need) {
			r.parts[i].place(t)
			return
		}
		// Only walk back a few partitions before giving up and growing;
		// scanning every partition on every insert would be quadratic.
		if len(r.parts)-i >= 4 {
			break
		}
	}
	p := r.newPartition()
	p.place(t)
}

func (r *Relation) newPartition() *Partition {
	p := &Partition{
		id:        len(r.parts),
		rel:       r,
		slots:     make([]*Tuple, 0, r.cfg.SlotsPerPartition),
		heapCap:   r.cfg.HeapPerPartition,
		snapDirty: true, // no snapshot has a clone array for it yet
	}
	r.parts = append(r.parts, p)
	return p
}

// Delete removes the tuple from the relation. Observers (index
// maintainers) are notified before the slot is reclaimed. Deleting a
// moved tuple removes its current home; deleting twice is an error.
func (r *Relation) Delete(t *Tuple) error {
	t = t.Resolve()
	if t == nil || t.dead {
		return fmt.Errorf("delete from %s: tuple already dead", r.name)
	}
	if t.part == nil || t.part.rel != r {
		return fmt.Errorf("delete from %s: tuple belongs to another relation", r.name)
	}
	for _, o := range r.observers {
		o.TupleDeleted(t)
	}
	t.dead = true
	t.part.remove(t)
	r.count--
	r.noteDML()
	return nil
}

// Update replaces field f of tuple t with v. If a growing variable-length
// value overflows the partition's heap space, the tuple is moved to a
// partition with room and a forwarding address is left in its old position
// (§2.1 footnote 1); existing *Tuple pointers remain valid through
// Resolve.
func (r *Relation) Update(t *Tuple, f int, v Value) error {
	t = t.Resolve()
	if t == nil || t.dead {
		return fmt.Errorf("update %s: tuple is dead", r.name)
	}
	if t.part == nil || t.part.rel != r {
		return fmt.Errorf("update %s: tuple belongs to another relation", r.name)
	}
	if f < 0 || f >= r.schema.Arity() {
		return fmt.Errorf("update %s: field %d out of range", r.name, f)
	}
	def := r.schema.Field(f)
	if !v.IsNull() && v.Type() != def.Type {
		return fmt.Errorf("update %s: field %q wants %s, got %s", r.name, def.Name, def.Type, v.Type())
	}
	for _, check := range r.updateChecks {
		if err := check(t, f, v); err != nil {
			return fmt.Errorf("update %s: %w", r.name, err)
		}
	}
	old := append([]Value(nil), t.vals...)
	for _, o := range r.observers {
		o.TupleUpdating(t, f, v)
	}
	delta := v.HeapBytes() - t.vals[f].HeapBytes()
	if delta > 0 && t.part.heapUsed+delta > t.part.heapCap {
		r.moveTuple(t, f, v)
	} else {
		t.part.heapUsed += delta
		t.part.snapDirty = true
		t.vals[f] = v
	}
	for _, o := range r.observers {
		o.TupleUpdated(t.Resolve(), old)
	}
	r.noteDML()
	return nil
}

// moveTuple relocates t (with field f set to v) to a partition with room,
// leaving a forwarding stub in the old position. The logical tuple keeps
// its ID.
func (r *Relation) moveTuple(t *Tuple, f int, v Value) {
	moved := r.newTuple(t.id, t.vals)
	moved.vals[f] = v
	// Free the old copy's heap usage but keep its slot occupied by the
	// forwarding stub, mirroring the paper's "forwarding address left in
	// its old position".
	t.part.heapUsed -= t.heapBytes()
	t.part.snapDirty = true
	t.vals = nil
	t.forward = moved
	r.placeTuple(moved)
}

// ScanPhysical visits every live tuple. It exists for index construction,
// recovery checkpointing, and tests; query execution must reach tuples
// through an index (§2.1).
func (r *Relation) ScanPhysical(fn func(*Tuple) bool) {
	for _, p := range r.parts {
		if !p.scan(fn) {
			return
		}
	}
}

// InsertLoaded re-creates a tuple with a known ID during recovery reload.
// It bypasses observers (indices are rebuilt after load) but performs
// normal schema validation and placement.
func (r *Relation) InsertLoaded(id uint64, vals []Value) (*Tuple, error) {
	if err := r.schema.Validate(vals); err != nil {
		return nil, fmt.Errorf("load into %s: %w", r.name, err)
	}
	t := r.newTuple(id, vals)
	r.placeTuple(t)
	r.count++
	r.noteDML()
	r.ids.Reserve(id)
	return t, nil
}
