package storage

import (
	"encoding/binary"
	"fmt"
)

// The codec serializes partition images for the disk copy of the database
// (§2.4, Figure 2). Ref values are swizzled to tuple IDs on disk and
// resolved back to pointers by the Loader after all working-set partitions
// are in memory.

// ValueImage is the on-disk form of a Value.
type ValueImage struct {
	Type  Type
	Num   uint64 // Int/Float/Bool payload
	Str   string // Str payload
	RefID uint64 // Ref payload (tuple ID)
}

// TupleImage is the on-disk form of a Tuple.
type TupleImage struct {
	ID   uint64
	Vals []ValueImage
}

// PartitionImage is the on-disk form of one partition — the paper's unit
// of recovery.
type PartitionImage struct {
	Relation string
	PartID   int
	LSN      uint64
	Tuples   []TupleImage
}

// ImageOf captures a value for serialization.
func ImageOf(v Value) ValueImage {
	switch v.Type() {
	case Ref:
		return ValueImage{Type: Ref, RefID: v.Ref().ID()}
	case Str:
		return ValueImage{Type: Str, Str: v.str}
	default:
		return ValueImage{Type: v.typ, Num: v.num}
	}
}

// Snapshot captures the partition's live tuples as an image.
func (p *Partition) Snapshot() PartitionImage {
	img := PartitionImage{Relation: p.rel.name, PartID: p.id, LSN: p.LSN()}
	p.scan(func(t *Tuple) bool {
		ti := TupleImage{ID: t.id, Vals: make([]ValueImage, len(t.vals))}
		for i, v := range t.vals {
			ti.Vals[i] = ImageOf(v)
		}
		img.Tuples = append(img.Tuples, ti)
		return true
	})
	return img
}

const codecMagic = uint32(0x4d4d4442) // "MMDB"

// EncodePartition serializes a partition image.
func EncodePartition(img PartitionImage) []byte {
	buf := make([]byte, 0, 64+len(img.Tuples)*32)
	buf = binary.BigEndian.AppendUint32(buf, codecMagic)
	buf = appendString(buf, img.Relation)
	buf = binary.BigEndian.AppendUint32(buf, uint32(img.PartID))
	buf = binary.BigEndian.AppendUint64(buf, img.LSN)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(img.Tuples)))
	for _, t := range img.Tuples {
		buf = binary.BigEndian.AppendUint64(buf, t.ID)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Vals)))
		for _, v := range t.Vals {
			buf = append(buf, byte(v.Type))
			switch v.Type {
			case Null:
			case Str:
				buf = appendString(buf, v.Str)
			case Ref:
				buf = binary.BigEndian.AppendUint64(buf, v.RefID)
			default:
				buf = binary.BigEndian.AppendUint64(buf, v.Num)
			}
		}
	}
	return buf
}

// DecodePartition parses a serialized partition image.
func DecodePartition(data []byte) (PartitionImage, error) {
	d := decoder{buf: data}
	var img PartitionImage
	if magic := d.uint32(); magic != codecMagic {
		return img, fmt.Errorf("storage: bad partition image magic %#x", magic)
	}
	img.Relation = d.string()
	img.PartID = int(d.uint32())
	img.LSN = d.uint64()
	n := int(d.uint32())
	if d.err == nil && n > len(data) { // cheap sanity bound: >= 1 byte/tuple
		return img, fmt.Errorf("storage: implausible tuple count %d", n)
	}
	img.Tuples = make([]TupleImage, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		t := TupleImage{ID: d.uint64()}
		nf := int(d.uint16())
		t.Vals = make([]ValueImage, 0, nf)
		for f := 0; f < nf && d.err == nil; f++ {
			v := ValueImage{Type: Type(d.byte())}
			switch v.Type {
			case Null:
			case Str:
				v.Str = d.string()
			case Ref:
				v.RefID = d.uint64()
			case Int, Float, Bool:
				v.Num = d.uint64()
			default:
				return img, fmt.Errorf("storage: bad value type %d in tuple %d", v.Type, t.ID)
			}
			t.Vals = append(t.Vals, v)
		}
		img.Tuples = append(img.Tuples, t)
	}
	if d.err != nil {
		return img, d.err
	}
	if len(d.buf) != 0 {
		return img, fmt.Errorf("storage: %d trailing bytes after partition image", len(d.buf))
	}
	return img, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("storage: truncated partition image (need %d bytes, have %d)", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) string() string {
	n := int(d.uint32())
	if d.err == nil && n > len(d.buf) {
		d.err = fmt.Errorf("storage: truncated string (need %d bytes, have %d)", n, len(d.buf))
		return ""
	}
	b := d.take(n)
	return string(b)
}

// valueFromImage rebuilds a non-Ref value. Ref values are resolved by the
// Loader once all tuples exist.
func valueFromImage(v ValueImage) Value {
	switch v.Type {
	case Str:
		return StringValue(v.Str)
	case Ref:
		return NullValue // patched by Loader.Finish
	default:
		return Value{typ: v.Type, num: v.Num}
	}
}

// Loader rebuilds relations from partition images, resolving Ref fields
// (pointer swizzling) once every required tuple is present. Load order is
// unconstrained — the recovery manager loads working-set partitions first
// and the rest in the background.
type Loader struct {
	rels    map[string]*Relation
	byID    map[uint64]*Tuple
	pending []pendingRef
}

type pendingRef struct {
	t     *Tuple
	field int
	refID uint64
}

// NewLoader creates a loader over the given relations.
func NewLoader(rels ...*Relation) *Loader {
	ld := &Loader{rels: make(map[string]*Relation), byID: make(map[uint64]*Tuple)}
	for _, r := range rels {
		ld.rels[r.name] = r
	}
	return ld
}

// LoadPartition inserts every tuple of the image into its relation,
// preserving the partition ID and LSN. Ref fields stay unresolved until
// Finish.
func (ld *Loader) LoadPartition(img PartitionImage) error {
	r, ok := ld.rels[img.Relation]
	if !ok {
		return fmt.Errorf("storage: image references unknown relation %q", img.Relation)
	}
	p := r.ensurePartition(img.PartID)
	p.SetLSN(img.LSN)
	for _, ti := range img.Tuples {
		if _, dup := ld.byID[ti.ID]; dup {
			return fmt.Errorf("storage: duplicate tuple ID %d in image %s/%d", ti.ID, img.Relation, img.PartID)
		}
		vals := make([]Value, len(ti.Vals))
		for i, vi := range ti.Vals {
			vals[i] = valueFromImage(vi)
		}
		t, err := r.loadInto(p, ti.ID, vals)
		if err != nil {
			return err
		}
		ld.byID[ti.ID] = t
		for i, vi := range ti.Vals {
			if vi.Type == Ref {
				ld.pending = append(ld.pending, pendingRef{t: t, field: i, refID: vi.RefID})
			}
		}
	}
	return nil
}

// TupleByID returns a loaded tuple by its ID.
func (ld *Loader) TupleByID(id uint64) (*Tuple, bool) {
	t, ok := ld.byID[id]
	return t, ok
}

// Finish resolves all pending Ref fields. Every referenced tuple must have
// been loaded.
func (ld *Loader) Finish() error {
	for _, p := range ld.pending {
		target, ok := ld.byID[p.refID]
		if !ok {
			return fmt.Errorf("storage: tuple %d field %d references missing tuple %d", p.t.id, p.field, p.refID)
		}
		p.t.vals[p.field] = RefValue(target)
	}
	ld.pending = nil
	return nil
}

// ensurePartition grows the relation's partition list so partition id
// exists, creating empty partitions as needed.
func (r *Relation) ensurePartition(id int) *Partition {
	for len(r.parts) <= id {
		r.newPartition()
	}
	return r.parts[id]
}

// loadInto places a tuple with a known ID into a specific partition,
// bypassing observers (indices are rebuilt after reload).
func (r *Relation) loadInto(p *Partition, id uint64, vals []Value) (*Tuple, error) {
	if err := r.schema.Validate(vals); err != nil {
		return nil, fmt.Errorf("load into %s: %w", r.name, err)
	}
	t := &Tuple{id: id, vals: vals}
	p.place(t)
	r.count++
	r.ids.Reserve(id)
	return t, nil
}
