package storage

import (
	"testing"
	"testing/quick"
)

func buildEmpDept(t *testing.T) (emp, dept *Relation, ids *IDGen) {
	t.Helper()
	ids = NewIDGen()
	deptSchema := MustSchema(
		FieldDef{Name: "name", Type: Str},
		FieldDef{Name: "id", Type: Int},
	)
	empSchema := MustSchema(
		FieldDef{Name: "name", Type: Str},
		FieldDef{Name: "id", Type: Int},
		FieldDef{Name: "age", Type: Int},
		FieldDef{Name: "dept", Type: Ref, ForeignKey: "dept"},
	)
	var err error
	dept, err = NewRelation("dept", deptSchema, Config{}, ids)
	if err != nil {
		t.Fatal(err)
	}
	emp, err = NewRelation("emp", empSchema, Config{}, ids)
	if err != nil {
		t.Fatal(err)
	}
	return emp, dept, ids
}

func TestPartitionImageRoundTrip(t *testing.T) {
	emp, dept, _ := buildEmpDept(t)
	toy, _ := dept.Insert([]Value{StringValue("Toy"), IntValue(459)})
	shoe, _ := dept.Insert([]Value{StringValue("Shoe"), IntValue(409)})
	emp.Insert([]Value{StringValue("Dave"), IntValue(23), IntValue(24), RefValue(toy)})
	emp.Insert([]Value{StringValue("Suzan"), IntValue(12), IntValue(27), RefValue(shoe)})
	emp.Insert([]Value{StringValue("Cindy"), IntValue(22), IntValue(22), NullValue})

	// Snapshot, encode, decode, reload into fresh relations.
	var images []PartitionImage
	for _, p := range dept.Partitions() {
		p.SetLSN(7)
		images = append(images, p.Snapshot())
	}
	for _, p := range emp.Partitions() {
		images = append(images, p.Snapshot())
	}
	var decoded []PartitionImage
	for _, img := range images {
		got, err := DecodePartition(EncodePartition(img))
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, got)
	}

	emp2, dept2, ids2 := buildEmpDept(t)
	_ = ids2
	ld := NewLoader(emp2, dept2)
	for _, img := range decoded {
		if err := ld.LoadPartition(img); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Finish(); err != nil {
		t.Fatal(err)
	}
	if emp2.Cardinality() != 3 || dept2.Cardinality() != 2 {
		t.Fatalf("cardinalities %d/%d", emp2.Cardinality(), dept2.Cardinality())
	}
	if dept2.Partitions()[0].LSN() != 7 {
		t.Fatalf("LSN lost: %d", dept2.Partitions()[0].LSN())
	}
	// Ref swizzling: Dave's dept pointer must land on the reloaded Toy tuple.
	var daveDept *Tuple
	emp2.ScanPhysical(func(tp *Tuple) bool {
		if tp.Field(0).Str() == "Dave" {
			daveDept = tp.Field(3).Ref()
		}
		return true
	})
	if daveDept == nil {
		t.Fatal("Dave not reloaded")
	}
	if daveDept.Field(0).Str() != "Toy" || daveDept.Field(1).Int() != 459 {
		t.Fatalf("Dave's dept = %v", daveDept)
	}
	// The reloaded ref must be a pointer into dept2, not the old database.
	if daveDept.Partition().Relation() != dept2 {
		t.Fatal("ref resolved into the wrong database instance")
	}
	// Null field survives.
	emp2.ScanPhysical(func(tp *Tuple) bool {
		if tp.Field(0).Str() == "Cindy" && !tp.Field(3).IsNull() {
			t.Error("Cindy's null dept became non-null")
		}
		return true
	})
}

func TestLoaderRejectsUnknownRelationAndDuplicateID(t *testing.T) {
	emp, _, _ := buildEmpDept(t)
	ld := NewLoader(emp)
	if err := ld.LoadPartition(PartitionImage{Relation: "nope"}); err == nil {
		t.Error("unknown relation accepted")
	}
	img := PartitionImage{Relation: "emp", Tuples: []TupleImage{
		{ID: 5, Vals: []ValueImage{{Type: Str, Str: "a"}, {Type: Int, Num: 1}, {Type: Int, Num: 2}, {Type: Null}}},
		{ID: 5, Vals: []ValueImage{{Type: Str, Str: "b"}, {Type: Int, Num: 1}, {Type: Int, Num: 2}, {Type: Null}}},
	}}
	if err := ld.LoadPartition(img); err == nil {
		t.Error("duplicate tuple ID accepted")
	}
}

func TestLoaderDanglingRefFails(t *testing.T) {
	emp, _, _ := buildEmpDept(t)
	ld := NewLoader(emp)
	img := PartitionImage{Relation: "emp", Tuples: []TupleImage{
		{ID: 1, Vals: []ValueImage{{Type: Str, Str: "a"}, {Type: Int, Num: 1}, {Type: Int, Num: 2}, {Type: Ref, RefID: 999}}},
	}}
	if err := ld.LoadPartition(img); err != nil {
		t.Fatal(err)
	}
	if err := ld.Finish(); err == nil {
		t.Error("dangling ref accepted")
	}
}

func TestLoaderPreservesPartitionIDs(t *testing.T) {
	emp, _, _ := buildEmpDept(t)
	ld := NewLoader(emp)
	// Load partition 2 before 0 — out-of-order, like a working set.
	img := PartitionImage{Relation: "emp", PartID: 2, LSN: 42, Tuples: []TupleImage{
		{ID: 9, Vals: []ValueImage{{Type: Str, Str: "z"}, {Type: Int, Num: 1}, {Type: Int, Num: 2}, {Type: Null}}},
	}}
	if err := ld.LoadPartition(img); err != nil {
		t.Fatal(err)
	}
	if len(emp.Partitions()) != 3 {
		t.Fatalf("want 3 partitions, got %d", len(emp.Partitions()))
	}
	if emp.Partitions()[2].LSN() != 42 || emp.Partitions()[2].Live() != 1 {
		t.Fatal("partition 2 not populated")
	}
	// Next normal insert must not collide with the reserved ID.
	tp, err := emp.Insert([]Value{StringValue("n"), IntValue(1), IntValue(2), NullValue})
	if err != nil {
		t.Fatal(err)
	}
	if tp.ID() <= 9 {
		t.Fatalf("ID %d collides with loaded IDs", tp.ID())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0},
	}
	for _, c := range cases {
		if _, err := DecodePartition(c); err == nil {
			t.Errorf("garbage %v accepted", c)
		}
	}
	// Truncation anywhere in a valid image must error, not panic.
	emp, _, _ := buildEmpDept(t)
	emp.Insert([]Value{StringValue("abc"), IntValue(1), IntValue(2), NullValue})
	full := EncodePartition(emp.Partitions()[0].Snapshot())
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodePartition(full[:cut]); err == nil {
			t.Fatalf("truncated image (%d of %d bytes) accepted", cut, len(full))
		}
	}
	// Trailing garbage must also error.
	if _, err := DecodePartition(append(append([]byte(nil), full...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(id uint64, n int64, s string, lsn uint64, partID uint8) bool {
		img := PartitionImage{
			Relation: "r",
			PartID:   int(partID),
			LSN:      lsn,
			Tuples: []TupleImage{{ID: id, Vals: []ValueImage{
				{Type: Int, Num: uint64(n)},
				{Type: Str, Str: s},
				{Type: Null},
				{Type: Bool, Num: 1},
				{Type: Float, Num: 0x400921fb54442d18},
			}}},
		}
		got, err := DecodePartition(EncodePartition(img))
		if err != nil {
			return false
		}
		if got.Relation != img.Relation || got.PartID != img.PartID || got.LSN != img.LSN {
			return false
		}
		if len(got.Tuples) != 1 || got.Tuples[0].ID != id {
			return false
		}
		for i, v := range got.Tuples[0].Vals {
			w := img.Tuples[0].Vals[i]
			if v.Type != w.Type || v.Num != w.Num || v.Str != w.Str || v.RefID != w.RefID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSkipsDeadAndForwardedStubs(t *testing.T) {
	r := newTestRelation(t, Config{SlotsPerPartition: 4, HeapPerPartition: 12})
	t1, _ := r.Insert([]Value{IntValue(1), StringValue("0123456789")})
	r.Update(t1, 1, StringValue("0123456789xx")) // overflow: moves tuple
	dead, _ := r.Insert([]Value{IntValue(2), NullValue})
	r.Delete(dead)
	total := 0
	for _, p := range r.Partitions() {
		total += len(p.Snapshot().Tuples)
	}
	if total != 1 {
		t.Fatalf("snapshots hold %d tuples, want 1 (no stubs, no dead)", total)
	}
}
