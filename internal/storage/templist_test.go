package storage

import "testing"

// buildFigure1 recreates the Employee/Department instance of Figure 1.
func buildFigure1(t *testing.T) (emp, dept *Relation, emps, depts map[string]*Tuple) {
	t.Helper()
	empRel, deptRel, _ := buildEmpDept(t)
	depts = map[string]*Tuple{}
	for _, d := range []struct {
		name string
		id   int64
	}{{"Toy", 459}, {"Shoe", 409}, {"Linen", 411}, {"Paint", 455}} {
		tp, err := deptRel.Insert([]Value{StringValue(d.name), IntValue(d.id)})
		if err != nil {
			t.Fatal(err)
		}
		depts[d.name] = tp
	}
	emps = map[string]*Tuple{}
	for _, e := range []struct {
		name string
		id   int64
		age  int64
		dept string
	}{
		{"Dave", 23, 24, "Toy"},
		{"Suzan", 12, 27, "Toy"},
		{"Yaman", 44, 54, "Linen"},
		{"Jane", 43, 47, "Linen"},
		{"Cindy", 22, 22, "Shoe"},
	} {
		tp, err := empRel.Insert([]Value{
			StringValue(e.name), IntValue(e.id), IntValue(e.age), RefValue(depts[e.dept]),
		})
		if err != nil {
			t.Fatal(err)
		}
		emps[e.name] = tp
	}
	return empRel, deptRel, emps, depts
}

func TestFigure1ResultList(t *testing.T) {
	_, _, emps, depts := buildFigure1(t)
	// Result descriptor of Figure 1: Emp Name, Emp Age, Dept Name.
	desc := Descriptor{
		Sources: []string{"emp", "dept"},
		Cols: []ColRef{
			{Source: 0, Field: 0, Name: "Emp.Name"},
			{Source: 0, Field: 2, Name: "Emp.Age"},
			{Source: 1, Field: 0, Name: "Dept.Name"},
		},
	}
	result := MustTempList(desc)
	for _, name := range []string{"Dave", "Suzan", "Yaman", "Jane", "Cindy"} {
		e := emps[name]
		result.Append(Row{e, e.Field(3).Ref()})
	}
	if result.Len() != 5 {
		t.Fatalf("len = %d", result.Len())
	}
	vals := result.RowValues(0)
	if vals[0].Str() != "Dave" || vals[1].Int() != 24 || vals[2].Str() != "Toy" {
		t.Fatalf("row 0 = %v", vals)
	}
	if got := result.Value(4, 2); got.Str() != "Shoe" {
		t.Fatalf("Cindy's dept = %v", got)
	}
	names := result.ColumnNames()
	if len(names) != 3 || names[2] != "Dept.Name" {
		t.Fatalf("columns = %v", names)
	}
	if result.Descriptor().ColIndex("Emp.Age") != 1 {
		t.Fatal("ColIndex wrong")
	}
	if result.Descriptor().ColIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
	_ = depts
}

func TestTempListScanStops(t *testing.T) {
	_, _, emps, _ := buildFigure1(t)
	l := MustTempList(Descriptor{Sources: []string{"emp"}, Cols: []ColRef{{Source: 0, Field: 0, Name: "n"}}})
	for _, e := range emps {
		l.Append(Row{e})
	}
	n := 0
	l.Scan(func(i int, row Row) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("scan visited %d rows", n)
	}
}

func TestTempListNoWidthReduction(t *testing.T) {
	// §2.3: "no width reduction is ever done" — the temp list stores
	// pointers; updating the base tuple is visible through the list.
	emp, _, emps, _ := buildFigure1(t)
	l := MustTempList(Descriptor{Sources: []string{"emp"}, Cols: []ColRef{{Source: 0, Field: 2, Name: "age"}}})
	l.Append(Row{emps["Dave"]})
	if err := emp.Update(emps["Dave"], 2, IntValue(66)); err != nil {
		t.Fatal(err)
	}
	if got := l.Value(0, 0).Int(); got != 66 {
		t.Fatalf("temp list copied data: age = %d, want 66", got)
	}
}

func TestDescriptorValidation(t *testing.T) {
	if _, err := NewTempList(Descriptor{}); err == nil {
		t.Error("empty descriptor accepted")
	}
	bad := Descriptor{Sources: []string{"a"}, Cols: []ColRef{{Source: 1, Field: 0, Name: "x"}}}
	if _, err := NewTempList(bad); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestAppendArityPanics(t *testing.T) {
	l := MustTempList(Descriptor{Sources: []string{"a", "b"}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong row arity")
		}
	}()
	l.Append(Row{nil})
}
