package storage

import (
	"sync"
	"testing"
)

// buildFigure1 recreates the Employee/Department instance of Figure 1.
func buildFigure1(t *testing.T) (emp, dept *Relation, emps, depts map[string]*Tuple) {
	t.Helper()
	empRel, deptRel, _ := buildEmpDept(t)
	depts = map[string]*Tuple{}
	for _, d := range []struct {
		name string
		id   int64
	}{{"Toy", 459}, {"Shoe", 409}, {"Linen", 411}, {"Paint", 455}} {
		tp, err := deptRel.Insert([]Value{StringValue(d.name), IntValue(d.id)})
		if err != nil {
			t.Fatal(err)
		}
		depts[d.name] = tp
	}
	emps = map[string]*Tuple{}
	for _, e := range []struct {
		name string
		id   int64
		age  int64
		dept string
	}{
		{"Dave", 23, 24, "Toy"},
		{"Suzan", 12, 27, "Toy"},
		{"Yaman", 44, 54, "Linen"},
		{"Jane", 43, 47, "Linen"},
		{"Cindy", 22, 22, "Shoe"},
	} {
		tp, err := empRel.Insert([]Value{
			StringValue(e.name), IntValue(e.id), IntValue(e.age), RefValue(depts[e.dept]),
		})
		if err != nil {
			t.Fatal(err)
		}
		emps[e.name] = tp
	}
	return empRel, deptRel, emps, depts
}

func TestFigure1ResultList(t *testing.T) {
	_, _, emps, depts := buildFigure1(t)
	// Result descriptor of Figure 1: Emp Name, Emp Age, Dept Name.
	desc := Descriptor{
		Sources: []string{"emp", "dept"},
		Cols: []ColRef{
			{Source: 0, Field: 0, Name: "Emp.Name"},
			{Source: 0, Field: 2, Name: "Emp.Age"},
			{Source: 1, Field: 0, Name: "Dept.Name"},
		},
	}
	result := MustTempList(desc)
	for _, name := range []string{"Dave", "Suzan", "Yaman", "Jane", "Cindy"} {
		e := emps[name]
		result.Append(Row{e, e.Field(3).Ref()})
	}
	if result.Len() != 5 {
		t.Fatalf("len = %d", result.Len())
	}
	vals := result.RowValues(0)
	if vals[0].Str() != "Dave" || vals[1].Int() != 24 || vals[2].Str() != "Toy" {
		t.Fatalf("row 0 = %v", vals)
	}
	if got := result.Value(4, 2); got.Str() != "Shoe" {
		t.Fatalf("Cindy's dept = %v", got)
	}
	names := result.ColumnNames()
	if len(names) != 3 || names[2] != "Dept.Name" {
		t.Fatalf("columns = %v", names)
	}
	if result.Descriptor().ColIndex("Emp.Age") != 1 {
		t.Fatal("ColIndex wrong")
	}
	if result.Descriptor().ColIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
	_ = depts
}

func TestTempListScanStops(t *testing.T) {
	_, _, emps, _ := buildFigure1(t)
	l := MustTempList(Descriptor{Sources: []string{"emp"}, Cols: []ColRef{{Source: 0, Field: 0, Name: "n"}}})
	for _, e := range emps {
		l.Append(Row{e})
	}
	n := 0
	l.Scan(func(i int, row Row) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("scan visited %d rows", n)
	}
}

func TestTempListNoWidthReduction(t *testing.T) {
	// §2.3: "no width reduction is ever done" — the temp list stores
	// pointers; updating the base tuple is visible through the list.
	emp, _, emps, _ := buildFigure1(t)
	l := MustTempList(Descriptor{Sources: []string{"emp"}, Cols: []ColRef{{Source: 0, Field: 2, Name: "age"}}})
	l.Append(Row{emps["Dave"]})
	if err := emp.Update(emps["Dave"], 2, IntValue(66)); err != nil {
		t.Fatal(err)
	}
	if got := l.Value(0, 0).Int(); got != 66 {
		t.Fatalf("temp list copied data: age = %d, want 66", got)
	}
}

func TestDescriptorValidation(t *testing.T) {
	if _, err := NewTempList(Descriptor{}); err == nil {
		t.Error("empty descriptor accepted")
	}
	bad := Descriptor{Sources: []string{"a"}, Cols: []ColRef{{Source: 1, Field: 0, Name: "x"}}}
	if _, err := NewTempList(bad); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestAppendArityPanics(t *testing.T) {
	l := MustTempList(Descriptor{Sources: []string{"a", "b"}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong row arity")
		}
	}()
	l.Append(Row{nil})
}

// TestRowsSnapshotUnderAppend is the regression for the aliasing bug:
// Rows() on a growing list must hand out a snapshot, not the live backing
// slice — a later Append may reallocate and leave the caller reading the
// abandoned array.
func TestRowsSnapshotUnderAppend(t *testing.T) {
	_, _, emps, _ := buildFigure1(t)
	l := MustTempList(Descriptor{Sources: []string{"emp"}})
	l.Append(Row{emps["Dave"]})
	view := l.Rows()
	for i := 0; i < 64; i++ { // force reallocation
		l.Append(Row{emps["Suzan"]})
	}
	if len(view) != 1 || view[0][0] != emps["Dave"] {
		t.Fatalf("pre-append view disturbed: %v", view)
	}
	if l.Len() != 65 {
		t.Fatalf("list length %d", l.Len())
	}
}

func TestFreezeSealsList(t *testing.T) {
	_, _, emps, _ := buildFigure1(t)
	l := MustTempList(Descriptor{Sources: []string{"emp"}})
	l.Append(Row{emps["Dave"]})
	if l.Frozen() {
		t.Fatal("fresh list reports frozen")
	}
	if got := l.Freeze().Freeze(); got != l || !l.Frozen() { // idempotent, chains
		t.Fatal("Freeze not idempotent or did not return the list")
	}
	if len(l.Rows()) != 1 {
		t.Fatal("frozen Rows wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Append to frozen list did not panic")
			}
		}()
		l.Append(Row{emps["Suzan"]})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Absorb into frozen list did not panic")
			}
		}()
		other := MustTempList(Descriptor{Sources: []string{"emp"}})
		l.Absorb(other)
	}()
}

func TestMergeLists(t *testing.T) {
	_, _, emps, _ := buildFigure1(t)
	desc := Descriptor{Sources: []string{"emp"}}
	a := MustTempList(desc)
	a.Append(Row{emps["Dave"]})
	a.Append(Row{emps["Suzan"]})
	b := MustTempList(desc)
	b.Append(Row{emps["Jane"]})
	merged, err := MergeLists(desc, []*TempList{a, nil, b, MustTempList(desc)})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 3 {
		t.Fatalf("merged %d rows, want 3", merged.Len())
	}
	// Slice order preserved.
	if merged.Row(0)[0] != emps["Dave"] || merged.Row(2)[0] != emps["Jane"] {
		t.Fatal("merge order broken")
	}
	// Arity mismatch panics via Absorb.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("arity mismatch absorbed silently")
			}
		}()
		wide := MustTempList(Descriptor{Sources: []string{"emp", "dept"}})
		merged.Absorb(wide)
	}()
}

// TestParallelAppendMerge is the -race exercise of the per-worker append
// contract: each worker appends to a private list, lists are merged after
// the workers join, and concurrent reads of a frozen list are safe.
func TestParallelAppendMerge(t *testing.T) {
	emp, _, emps, _ := buildFigure1(t)
	_ = emp
	tp := emps["Dave"]
	desc := Descriptor{Sources: []string{"emp"}}
	const workers, perWorker = 8, 500
	parts := make([]*TempList, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			l := MustTempList(desc)
			for i := 0; i < perWorker; i++ {
				l.Append(Row{tp})
			}
			parts[w] = l
		}(w)
	}
	wg.Wait()
	merged, err := MergeLists(desc, parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != workers*perWorker {
		t.Fatalf("merged %d rows, want %d", merged.Len(), workers*perWorker)
	}
	// Concurrent readers over the frozen result.
	merged.Freeze()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			n := 0
			for _, row := range merged.Rows() {
				if row[0] == tp {
					n++
				}
			}
			if n != workers*perWorker {
				t.Errorf("reader saw %d rows", n)
			}
		}()
	}
	wg.Wait()
}
