package storage

import "testing"

// Arena-layout tests: chunk boundaries, view stability, capacity hints,
// recycling, and the zero-allocation append fast paths.

func batchTestRelation(t testing.TB, name string, n int) []*Tuple {
	t.Helper()
	sch := MustSchema(FieldDef{Name: "val", Type: Int})
	rel, err := NewRelation(name, sch, Config{}, NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Tuple, n)
	for i := 0; i < n; i++ {
		tp, err := rel.Insert([]Value{IntValue(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tp
	}
	return out
}

func singleDesc() Descriptor {
	return Descriptor{Sources: []string{"r"}, Cols: []ColRef{{Source: 0, Field: 0, Name: "val"}}}
}

func pairDesc() Descriptor {
	return Descriptor{Sources: []string{"a", "b"}}
}

func checkOrder(t *testing.T, l *TempList, want []*Tuple) {
	t.Helper()
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	for i, tp := range want {
		if got := l.Row(i)[0]; got != tp {
			t.Fatalf("Row(%d)[0] = %p, want %p", i, got, tp)
		}
	}
	i := 0
	l.Scan(func(j int, row Row) bool {
		if j != i {
			t.Fatalf("Scan index %d, want %d", j, i)
		}
		if row[0] != want[i] {
			t.Fatalf("Scan row %d mismatch", i)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("Scan visited %d rows, want %d", i, len(want))
	}
}

func TestTempListChunkBoundaries(t *testing.T) {
	n := 3*ChunkRows + 17 // several full chunks plus a partial tail
	tuples := batchTestRelation(t, "r", n)
	l := MustTempList(singleDesc())
	for i, tp := range tuples {
		if i%2 == 0 {
			l.AppendOne(tp)
		} else {
			l.Append(Row{tp})
		}
	}
	checkOrder(t, l, tuples)
	if rows := l.Snapshot(); len(rows) != n {
		t.Fatalf("Snapshot len = %d, want %d", len(rows), n)
	}
}

func TestTempListRowViewsStableAcrossAppends(t *testing.T) {
	tuples := batchTestRelation(t, "r", 2*ChunkRows)
	l := MustTempList(singleDesc())
	l.AppendOne(tuples[0])
	early := l.Row(0)
	for _, tp := range tuples[1:] {
		l.AppendOne(tp) // crosses a chunk boundary; must not move row 0
	}
	if early[0] != tuples[0] {
		t.Fatal("row view invalidated by later appends")
	}
	if &early[0] != &l.Row(0)[0] {
		t.Fatal("row 0 moved: chunks must never reallocate")
	}
}

func TestTempListAppendBatchSplits(t *testing.T) {
	n := 2*ChunkRows + ChunkRows/2
	tuples := batchTestRelation(t, "r", n)
	l := MustTempList(singleDesc())
	// Odd split points so block copies straddle chunk boundaries.
	l.AppendBatch(tuples[:3])
	l.AppendBatch(tuples[3 : ChunkRows+5])
	l.AppendBatch(tuples[ChunkRows+5:])
	checkOrder(t, l, tuples)
}

func TestTempListAppendPair(t *testing.T) {
	n := ChunkRows + 9
	a := batchTestRelation(t, "a", n)
	b := batchTestRelation(t, "b", n)
	l := MustTempList(pairDesc())
	for i := 0; i < n; i++ {
		l.AppendPair(a[i], b[i])
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	for i := 0; i < n; i++ {
		row := l.Row(i)
		if row[0] != a[i] || row[1] != b[i] {
			t.Fatalf("row %d = (%p,%p), want (%p,%p)", i, row[0], row[1], a[i], b[i])
		}
	}
}

func TestTempListHintExactFitAndOverrun(t *testing.T) {
	tuples := batchTestRelation(t, "r", 2*ChunkRows)
	l := MustTempListHint(singleDesc(), 10)
	for _, tp := range tuples { // 40x the hint: must grow gracefully
		l.AppendOne(tp)
	}
	checkOrder(t, l, tuples)

	big := MustTempListHint(singleDesc(), len(tuples))
	big.AppendBatch(tuples)
	checkOrder(t, big, tuples)
}

func TestTempListResetReuse(t *testing.T) {
	tuples := batchTestRelation(t, "r", ChunkRows+3)
	l := MustTempList(singleDesc())
	l.AppendBatch(tuples)
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	l.AppendBatch(tuples[:5])
	checkOrder(t, l, tuples[:5])
	l.Release()
	if l.Len() != 0 {
		t.Fatalf("Len after Release = %d", l.Len())
	}
}

func TestMergeListsRecycle(t *testing.T) {
	tuples := batchTestRelation(t, "r", 3*ChunkRows)
	parts := make([]*TempList, 4)
	bounds := []int{0, 100, ChunkRows + 1, 2 * ChunkRows, len(tuples)}
	for i := range parts {
		p := MustTempList(singleDesc())
		p.AppendBatch(tuples[bounds[i]:bounds[i+1]])
		parts[i] = p
	}
	parts = append(parts, nil) // nil partials are skipped
	out, err := MergeListsRecycle(singleDesc(), parts)
	if err != nil {
		t.Fatal(err)
	}
	checkOrder(t, out, tuples)
	for i, p := range parts[:4] {
		if p.Len() != 0 {
			t.Fatalf("part %d not emptied after recycle", i)
		}
	}
}

func TestScanColumnBatches(t *testing.T) {
	n := 2*ChunkRows + 31
	a := batchTestRelation(t, "a", n)
	b := batchTestRelation(t, "b", n)

	single := MustTempList(singleDesc())
	single.AppendBatch(a)
	var got []*Tuple
	single.ScanColumnBatches(0, nil, func(block []*Tuple) bool {
		got = append(got, block...)
		return true
	})
	if len(got) != n {
		t.Fatalf("single-source scan yielded %d tuples, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != a[i] {
			t.Fatalf("single-source scan out of order at %d", i)
		}
	}

	pair := MustTempList(pairDesc())
	for i := 0; i < n; i++ {
		pair.AppendPair(a[i], b[i])
	}
	for col, want := range [][]*Tuple{a, b} {
		got = got[:0]
		pair.ScanColumnBatches(col, GetBatch(), func(block []*Tuple) bool {
			got = append(got, block...)
			return true
		})
		if len(got) != n {
			t.Fatalf("col %d scan yielded %d tuples", col, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("col %d scan out of order at %d", col, i)
			}
		}
	}
}

func TestAppendFastPathsZeroAlloc(t *testing.T) {
	a := batchTestRelation(t, "a", 4)
	b := batchTestRelation(t, "b", 4)

	// Within a hinted exact-fit chunk no append may allocate: no Row
	// header, no chunk growth.
	single := MustTempListHint(singleDesc(), 256)
	if allocs := testing.AllocsPerRun(64, func() { single.AppendOne(a[0]) }); allocs != 0 {
		t.Fatalf("AppendOne allocated %.1f objects per row", allocs)
	}
	viaRow := MustTempListHint(singleDesc(), 256)
	if allocs := testing.AllocsPerRun(64, func() { viaRow.Append(Row{a[0]}) }); allocs != 0 {
		t.Fatalf("Append(Row{t}) allocated %.1f objects per row (row header escaped)", allocs)
	}
	pair := MustTempListHint(pairDesc(), 256)
	if allocs := testing.AllocsPerRun(64, func() { pair.AppendPair(a[1], b[1]) }); allocs != 0 {
		t.Fatalf("AppendPair allocated %.1f objects per row", allocs)
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if len(b) != 0 || cap(b) != BatchSize {
		t.Fatalf("GetBatch: len %d cap %d, want 0/%d", len(b), cap(b), BatchSize)
	}
	tuples := batchTestRelation(t, "r", 3)
	b = append(b, tuples...)
	PutBatch(b)
	// Undersized blocks must not poison the pool.
	PutBatch(make([]*Tuple, 0, 7))
	if c := GetBatch(); cap(c) != BatchSize {
		t.Fatalf("pool handed back a block with cap %d", cap(c))
	}
}

func TestAppendArityMismatchPanics(t *testing.T) {
	l := MustTempList(pairDesc())
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Append", func() { l.Append(Row{nil}) }},
		{"AppendOne", func() { l.AppendOne(nil) }},
		{"AppendBatch", func() { l.AppendBatch(nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: arity mismatch did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
