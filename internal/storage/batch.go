package storage

import "sync"

// Batch-at-a-time execution support. Lehman & Carey's cost model (§3.1)
// prices comparisons and data movement; on modern hardware data movement
// means cache misses and allocator traffic. Operators therefore move
// tuple pointers in fixed-size blocks — a TupleBatch — instead of one
// indirect callback per tuple, and temporary lists are backed by chunked,
// pool-recycled arena segments (see templist.go) so the emit hot path
// performs no per-row allocation and no regrow-copy.

// BatchSize is the number of tuple pointers per block: 256 pointers is
// 2 KiB on a 64-bit layout — a handful of cache lines, small enough to
// stay L1/L2-resident while an operator's inner loop runs over it, large
// enough to amortize the per-block dispatch to ~1/256 of a call per
// tuple. TempList chunks hold the same number of rows so a list chunk
// can serve directly as a scan block for single-source lists.
const BatchSize = 256

// TupleBatch is a block of tuple pointers — the unit operators hand
// around in batch-at-a-time execution. It is a plain slice: append to it,
// range over it, subslice it. Use GetBatch/PutBatch to recycle backing
// arrays through a pool instead of allocating per operator.
type TupleBatch = []*Tuple

// batchPool recycles BatchSize-capacity tuple-pointer blocks. Stored as
// *[]*Tuple so Put does not allocate an interface box per call.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]*Tuple, 0, BatchSize)
		return &b
	},
}

// GetBatch returns an empty batch with capacity BatchSize from the pool.
// Release it with PutBatch when the operator finishes.
func GetBatch() TupleBatch {
	return (*batchPool.Get().(*[]*Tuple))[:0]
}

// PutBatch clears b (so pooled blocks do not pin dead tuples) and returns
// its backing array to the pool. Only full-capacity blocks are pooled;
// odd-sized slices are left for the GC.
func PutBatch(b TupleBatch) {
	if cap(b) != BatchSize {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = nil
	}
	b = b[:0]
	batchPool.Put(&b)
}

// chunkPools recycles TempList arena chunks, one pool per source arity
// (the overwhelmingly common cases are 1 — selections — and 2 — two-way
// joins). Each pooled chunk holds ChunkRows rows = ChunkRows*arity tuple
// pointers. Wider arities fall through to plain allocation.
var chunkPools [4]sync.Pool

func init() {
	for a := range chunkPools {
		arity := a + 1
		chunkPools[a].New = func() any {
			c := make([]*Tuple, 0, ChunkRows*arity)
			return &c
		}
	}
}

// getChunk returns an empty full-size chunk for the given arity.
func getChunk(arity int) []*Tuple {
	if arity >= 1 && arity <= len(chunkPools) {
		return (*chunkPools[arity-1].Get().(*[]*Tuple))[:0]
	}
	return make([]*Tuple, 0, ChunkRows*arity)
}

// putChunk clears a chunk and returns it to its arity pool. Chunks that
// are not full-size (the exact-fit chunks small CapacityHints allocate)
// are left for the GC — pooling them would poison the pool with short
// blocks.
func putChunk(c []*Tuple, arity int) {
	if arity < 1 || arity > len(chunkPools) || cap(c) != ChunkRows*arity {
		return
	}
	c = c[:cap(c)]
	for i := range c {
		c[i] = nil
	}
	c = c[:0]
	chunkPools[arity-1].Put(&c)
}
