package storage

import "sync/atomic"

// DefaultSlotsPerPartition and DefaultHeapPerPartition size a partition at
// roughly "one or two disk tracks" (§2.1), the paper's unit of recovery.
const (
	DefaultSlotsPerPartition = 256
	DefaultHeapPerPartition  = 48 * 1024
)

// Config controls partition sizing for a relation.
type Config struct {
	SlotsPerPartition int // tuple slots per partition
	HeapPerPartition  int // heap-space bytes per partition (var-length fields)
}

func (c Config) withDefaults() Config {
	if c.SlotsPerPartition <= 0 {
		c.SlotsPerPartition = DefaultSlotsPerPartition
	}
	if c.HeapPerPartition <= 0 {
		c.HeapPerPartition = DefaultHeapPerPartition
	}
	return c
}

// Partition is the unit of recovery and locking: a group of tuple slots
// plus heap space for variable-length fields. Tuples are grouped in
// partitions for space management and recovery, not for clustering —
// direct addressability makes physical contiguity irrelevant to query
// processing (§2.1).
type Partition struct {
	id       int
	rel      *Relation
	slots    []*Tuple
	free     []int // indexes of reusable slots
	live     int
	heapCap  int
	heapUsed int
	lsn      uint64 // highest log sequence number applied; used by recovery
	// snapDirty marks that DML touched this partition since the last
	// snapshot publication, so the next publish must re-clone it instead
	// of sharing the previous snapshot's array (see snapshot.go). Written
	// under the engine's exclusive locks, read by the publisher under the
	// same exclusion.
	snapDirty bool
}

// ID returns the partition's position within its relation.
func (p *Partition) ID() int { return p.id }

// Relation returns the owning relation.
func (p *Partition) Relation() *Relation { return p.rel }

// Live returns the number of live tuples in the partition.
func (p *Partition) Live() int { return p.live }

// HeapUsed returns the heap-space bytes in use.
func (p *Partition) HeapUsed() int { return p.heapUsed }

// HeapCap returns the heap-space capacity in bytes.
func (p *Partition) HeapCap() int { return p.heapCap }

// LSN returns the highest log sequence number applied to this partition.
func (p *Partition) LSN() uint64 { return atomic.LoadUint64(&p.lsn) }

// SetLSN records the highest log sequence number applied to this
// partition; the recovery manager calls this after each propagated update.
func (p *Partition) SetLSN(lsn uint64) { atomic.StoreUint64(&p.lsn, lsn) }

// hasRoomFor reports whether the partition can take one more tuple with
// the given heap footprint.
func (p *Partition) hasRoomFor(heapBytes int) bool {
	if p.heapUsed+heapBytes > p.heapCap {
		return false
	}
	return len(p.free) > 0 || len(p.slots) < cap(p.slots)
}

// place stores a tuple into a free slot. The caller guarantees room.
func (p *Partition) place(t *Tuple) {
	var slot int
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
		p.slots[slot] = t
	} else {
		slot = len(p.slots)
		p.slots = append(p.slots, t)
	}
	t.part = p
	t.slot = slot
	p.live++
	p.heapUsed += t.heapBytes()
	p.snapDirty = true
}

// remove frees the tuple's slot and heap space. The tuple struct itself
// survives as long as indices point at it; only the partition bookkeeping
// changes.
func (p *Partition) remove(t *Tuple) {
	p.slots[t.slot] = nil
	p.free = append(p.free, t.slot)
	p.live--
	p.heapUsed -= t.heapBytes()
	p.snapDirty = true
}

// Scan visits every live tuple in the partition until fn returns false;
// it reports whether the scan ran to completion. This is the
// partition-granularity scan API the parallel executor consumes: each
// partition is an independently scannable morsel, so workers can divide a
// relation at partition boundaries without coordinating per tuple.
// Callers must hold at least a shared lock on the relation (or partition)
// for the duration of the scan.
func (p *Partition) Scan(fn func(*Tuple) bool) bool { return p.scan(fn) }

// scan visits every live tuple in the partition (forwarding stubs are
// skipped: the tuple is visited at its current home).
func (p *Partition) scan(fn func(*Tuple) bool) bool {
	for _, t := range p.slots {
		if t == nil || t.dead || t.forward != nil {
			continue
		}
		if !fn(t) {
			return false
		}
	}
	return true
}
