package radix

import (
	"math/rand"
	"testing"

	"repro/internal/meter"
	"repro/internal/storage"
)

// mkEntries builds n row entries with hashes drawn by gen.
func mkEntries(n int, gen func(i int) uint64) []RowEntry {
	es := make([]RowEntry, n)
	for i := range es {
		es[i] = RowEntry{H: gen(i), P: int32(i)}
	}
	return es
}

// checkPartitioned asserts the invariants every Partition result must
// hold: exact coverage, every entry in its hash's partition, and stable
// (ascending payload) order within each partition.
func checkPartitioned(t *testing.T, res []RowEntry, offs []int, pl Plan, n int) {
	t.Helper()
	fanout := pl.Fanout()
	if len(offs) != fanout+1 {
		t.Fatalf("offs length = %d, want fanout+1 = %d", len(offs), fanout+1)
	}
	if offs[0] != 0 || offs[fanout] != n {
		t.Fatalf("offs[0]=%d offs[last]=%d, want 0 and %d", offs[0], offs[fanout], n)
	}
	shift := 64 - pl.TotalBits()
	seen := make(map[int32]bool, n)
	for p := 0; p < fanout; p++ {
		if offs[p] > offs[p+1] {
			t.Fatalf("partition %d has negative extent [%d,%d)", p, offs[p], offs[p+1])
		}
		prev := int32(-1)
		for _, e := range res[offs[p]:offs[p+1]] {
			if got := int(e.H >> shift); got != p {
				t.Fatalf("entry with hash %#x landed in partition %d, want %d", e.H, p, got)
			}
			if e.P <= prev {
				t.Fatalf("partition %d not stable: payload %d after %d", p, e.P, prev)
			}
			prev = e.P
			if seen[e.P] {
				t.Fatalf("payload %d appears twice", e.P)
			}
			seen[e.P] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("partitioned output covers %d entries, want %d", len(seen), n)
	}
}

func TestPartitionSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	es := mkEntries(10_000, func(int) uint64 { return rng.Uint64() })
	var p Partitioner[int32]
	var m meter.Counters
	pl := Plan{Bits: []uint{6}}
	res, offs := p.Partition(es, pl, &m)
	checkPartitioned(t, res, offs, pl, len(es))
	if m.RadixPasses != 1 {
		t.Fatalf("RadixPasses = %d, want 1", m.RadixPasses)
	}
	if m.Partitions != 64 {
		t.Fatalf("Partitions = %d, want 64", m.Partitions)
	}
	if m.DataMoves != 10_000 {
		t.Fatalf("DataMoves = %d, want one per entry per pass", m.DataMoves)
	}
}

func TestPartitionMultiPass(t *testing.T) {
	for _, bits := range [][]uint{{4, 4}, {3, 3, 3}, {8, 2}, {1, 1, 1, 1}} {
		rng := rand.New(rand.NewSource(2))
		es := mkEntries(5_000, func(int) uint64 { return rng.Uint64() })
		var p Partitioner[int32]
		var m meter.Counters
		pl := Plan{Bits: bits}
		res, offs := p.Partition(es, pl, &m)
		checkPartitioned(t, res, offs, pl, len(es))
		if int(m.RadixPasses) != len(bits) {
			t.Fatalf("bits %v: RadixPasses = %d, want %d", bits, m.RadixPasses, len(bits))
		}
		if want := int64(len(bits)) * 5_000; m.DataMoves != want {
			t.Fatalf("bits %v: DataMoves = %d, want %d", bits, m.DataMoves, want)
		}
	}
}

// Multi-pass and single-pass plans of the same total width must produce
// the identical final layout (MSD refinement is order-preserving).
func TestMultiPassMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := mkEntries(8_000, func(int) uint64 { return rng.Uint64() })
	run := func(bits []uint) ([]RowEntry, []int) {
		es := make([]RowEntry, len(base))
		copy(es, base)
		var p Partitioner[int32]
		res, offs := p.Partition(es, Plan{Bits: bits}, nil)
		out := make([]RowEntry, len(res))
		copy(out, res)
		o := make([]int, len(offs))
		copy(o, offs)
		return out, o
	}
	r1, o1 := run([]uint{8})
	r2, o2 := run([]uint{4, 4})
	r3, o3 := run([]uint{3, 5})
	for i := range r1 {
		if r1[i] != r2[i] || r1[i] != r3[i] {
			t.Fatalf("layouts diverge at %d: %v vs %v vs %v", i, r1[i], r2[i], r3[i])
		}
	}
	for i := range o1 {
		if o1[i] != o2[i] || o1[i] != o3[i] {
			t.Fatalf("offsets diverge at %d", i)
		}
	}
}

// Degenerate: all-equal keys put every entry in one partition; the hot
// partition must stream through the write-combining buffers without
// overflow and stay stable.
func TestPartitionAllEqualKeys(t *testing.T) {
	const h = uint64(0xdeadbeefcafef00d)
	es := mkEntries(10_000, func(int) uint64 { return h })
	var p Partitioner[int32]
	pl := Plan{Bits: []uint{5, 3}}
	res, offs := p.Partition(es, pl, nil)
	checkPartitioned(t, res, offs, pl, len(es))
	hot := int(h >> (64 - pl.TotalBits()))
	if got := offs[hot+1] - offs[hot]; got != 10_000 {
		t.Fatalf("hot partition holds %d entries, want all 10000", got)
	}
}

func TestPartitionEmptyAndTiny(t *testing.T) {
	var p Partitioner[int32]
	pl := Plan{Bits: []uint{4}}
	res, offs := p.Partition(nil, pl, nil)
	if len(res) != 0 || len(offs) != pl.Fanout()+1 || offs[pl.Fanout()] != 0 {
		t.Fatalf("empty input: res=%d offs=%v", len(res), offs)
	}
	one := mkEntries(1, func(int) uint64 { return 0 })
	res, offs = p.Partition(one, pl, nil)
	checkPartitioned(t, res, offs, pl, 1)
	// Zero-width plan: single partition, input untouched.
	res, offs = p.Partition(one, Plan{}, nil)
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 1 || res[0].P != 0 {
		t.Fatalf("zero-bit plan: offs=%v res=%v", offs, res)
	}
}

func TestPartitionerReuseAcrossPlans(t *testing.T) {
	var p Partitioner[int32]
	rng := rand.New(rand.NewSource(4))
	for _, pl := range []Plan{{Bits: []uint{8}}, {Bits: []uint{2}}, {Bits: []uint{6, 6}}, {Bits: []uint{1}}} {
		es := mkEntries(3_000, func(int) uint64 { return rng.Uint64() })
		res, offs := p.Partition(es, pl, nil)
		checkPartitioned(t, res, offs, pl, len(es))
	}
}

func TestPlanExceedingMaxBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for plan wider than MaxBits")
		}
	}()
	var p Partitioner[int32]
	p.Partition(nil, Plan{Bits: []uint{9, 9}}, nil)
}

// The scatter loop must be zero-alloc once the partitioner is warm —
// the steady state the pooled partitioners run in.
func TestPartitionZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	es := mkEntries(4_096, func(int) uint64 { return rng.Uint64() })
	var p Partitioner[int32]
	pl := Plan{Bits: []uint{6, 4}}
	p.Partition(es, pl, nil) // warm the scratch
	var m meter.Counters
	allocs := testing.AllocsPerRun(10, func() {
		p.Partition(es, pl, &m)
	})
	if allocs != 0 {
		t.Fatalf("warm Partition allocated %.1f times per run, want 0", allocs)
	}
}

func TestStats(t *testing.T) {
	pl := Plan{Bits: []uint{2}}
	offs := []int{0, 10, 10, 30, 40}
	s := StatsOf(pl, offs)
	if s.Rows != 40 || s.MaxPart != 20 || s.Fanout != 4 || s.Passes != 1 {
		t.Fatalf("StatsOf = %+v", s)
	}
	if got := s.Skew(); got != 2.0 {
		t.Fatalf("Skew = %v, want 2.0 (20 vs mean 10)", got)
	}
	if (Stats{}).Skew() != 0 {
		t.Fatal("empty Skew should be 0")
	}
}

func TestPools(t *testing.T) {
	tp := GetTuplePartitioner()
	es := []TupleEntry{{H: 1, P: &storage.Tuple{}}, {H: 1 << 63, P: &storage.Tuple{}}}
	res, offs := tp.Partition(es, Plan{Bits: []uint{1}}, nil)
	if offs[1] != 1 || res[0].P == nil {
		t.Fatalf("tuple partition: offs=%v", offs)
	}
	PutTuplePartitioner(tp)
	rp := GetRowPartitioner()
	rp.Partition(mkEntries(10, func(i int) uint64 { return uint64(i) << 60 }), Plan{Bits: []uint{4}}, nil)
	PutRowPartitioner(rp)
}

func BenchmarkPartition1M(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	es := mkEntries(1<<20, func(int) uint64 { return rng.Uint64() })
	work := make([]RowEntry, len(es))
	var p Partitioner[int32]
	pl := Plan{Bits: []uint{7}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, es)
		p.Partition(work, pl, nil)
	}
	b.SetBytes(int64(len(es)) * 16)
}

// PartitionFrom with skip=B must refine one partition of a skip=0 run
// over B bits exactly as a single wider run would have: re-splitting
// partition p of a 4-bit run by 3 more bits reproduces the 7-bit
// layout's partitions [p*8, p*8+8).
func TestPartitionFromRefinesFatPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := mkEntries(20_000, func(int) uint64 { return rng.Uint64() })

	var p Partitioner[int32]
	coarse := Plan{Bits: []uint{4}}
	cres, coffs := p.Partition(append([]RowEntry(nil), base...), coarse, nil)

	var pw Partitioner[int32]
	wide := Plan{Bits: []uint{7}}
	wres, woffs := pw.Partition(append([]RowEntry(nil), base...), wide, nil)

	fine := Plan{Bits: []uint{3}}
	for part := 0; part < coarse.Fanout(); part++ {
		seg := append([]RowEntry(nil), cres[coffs[part]:coffs[part+1]]...)
		var pr Partitioner[int32]
		fres, foffs := pr.PartitionFrom(seg, fine, coarse.TotalBits(), nil)
		if len(foffs) != fine.Fanout()+1 {
			t.Fatalf("part %d: %d offsets", part, len(foffs))
		}
		for c := 0; c < fine.Fanout(); c++ {
			got := fres[foffs[c]:foffs[c+1]]
			want := wres[woffs[part*8+c]:woffs[part*8+c+1]]
			if len(got) != len(want) {
				t.Fatalf("part %d child %d: %d entries, want %d", part, c, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("part %d child %d entry %d: %+v, want %+v (refinement not stable)", part, c, i, got[i], want[i])
				}
			}
		}
	}
}

// All-equal hashes cannot be refined: every entry lands in one child no
// matter how deep the re-split goes — the bail-out the budgeted join's
// Force path exists for.
func TestPartitionFromAllEqual(t *testing.T) {
	es := mkEntries(1_000, func(int) uint64 { return 0xDEADBEEFCAFE0000 })
	var p Partitioner[int32]
	pl := Plan{Bits: []uint{4}}
	res, offs := p.PartitionFrom(es, pl, 8, nil)
	max := 0
	for i := 0; i < pl.Fanout(); i++ {
		if n := offs[i+1] - offs[i]; n > max {
			max = n
		}
	}
	if max != len(res) || max != 1_000 {
		t.Fatalf("all-equal hashes split: max child %d of %d", max, len(res))
	}
}

func TestPartitionFromOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("skip+bits > 64 did not panic")
		}
	}()
	var p Partitioner[int32]
	p.PartitionFrom(nil, Plan{Bits: []uint{16}}, 60, nil)
}

func TestTableBytes(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, 8 * 16}, {1, 8 * 16}, {4, 8 * 16}, {5, 16 * 16},
		{8, 16 * 16}, {100, 256 * 16}, {1 << 20, 1 << 21 * 16},
	}
	for _, c := range cases {
		if got := TableBytes(c.n); got != c.want {
			t.Fatalf("TableBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	var tb Table
	tb.Reset(100)
	if got := int64(tb.Slots()) * 16; got != TableBytes(100) {
		t.Fatalf("TableBytes(100)=%d but Reset(100) sized %d", TableBytes(100), got)
	}
}
