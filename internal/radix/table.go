package radix

import (
	"sync"

	"repro/internal/storage"
)

// Table is the per-partition build table of the radix hash join: a flat
// open-addressing array of (hash, tuple) slots with linear probing and a
// power-of-two mask — no chain nodes, no per-entry allocation, no
// pointer chasing. Sized at twice the partition's cardinality (load
// factor ≤ 0.5) a table over an L2-sized partition stays L2-resident for
// the whole build+probe of that partition, which is the point of
// partitioning in the first place.
//
// Slot selection uses the LOW bits of the hash (h & mask); the radix
// kernel partitions on the HIGH bits, so within one partition the low
// bits remain uniformly distributed.
//
// The probe compares stored hashes first and only calls the caller's
// key comparison on a 64-bit hash match, so almost every non-matching
// slot is rejected without touching the tuple at all.
//
// A Table is single-goroutine during build and immutable during probe;
// the parallel join gives every partition its own table. Empty slots are
// T == nil, so inserted tuples must be non-nil.
type Table struct {
	slots []TupleEntry
	mask  uint64
	n     int
}

// Len is the number of entries inserted since the last Reset.
func (t *Table) Len() int { return t.n }

// Slots is the current slot-array size (for tests and sizing checks).
func (t *Table) Slots() int { return len(t.slots) }

// Reset prepares the table for a build of up to n entries: the slot
// array is sized to the smallest power of two ≥ 2n (min 8) and cleared.
// It reports whether a new slot array was allocated — false on a warm
// table big enough for n, which is the pooled steady state.
func (t *Table) Reset(n int) bool {
	need := 8
	for need < 2*n {
		need <<= 1
	}
	if cap(t.slots) >= need {
		t.slots = t.slots[:need]
		clear(t.slots)
		t.mask = uint64(need - 1)
		t.n = 0
		return false
	}
	t.slots = make([]TupleEntry, need)
	t.mask = uint64(need - 1)
	t.n = 0
	return true
}

// Insert adds one (hash, tuple) entry. Duplicate hashes and keys are
// fine — each entry occupies its own slot and ProbeAppend returns them
// all. If an undersized Reset hint left the table too loaded (a
// degenerate capacity hint), the table doubles and rehashes rather than
// overflow — behavior stays correct, only the exact-fit guarantee is
// lost.
func (t *Table) Insert(h uint64, tp *storage.Tuple) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	s := h & t.mask
	for t.slots[s].P != nil {
		s = (s + 1) & t.mask
	}
	t.slots[s] = TupleEntry{H: h, P: tp}
	t.n++
}

// grow doubles the slot array and reinserts every entry.
func (t *Table) grow() {
	old := t.slots
	t.slots = make([]TupleEntry, 2*len(old))
	t.mask = uint64(len(t.slots) - 1)
	for _, e := range old {
		if e.P == nil {
			continue
		}
		s := e.H & t.mask
		for t.slots[s].P != nil {
			s = (s + 1) & t.mask
		}
		t.slots[s] = e
	}
}

// ProbeAppend appends to out every build tuple matching the probe: the
// linear-probe run from h's home slot is walked until the first empty
// slot, match is consulted only for slots whose stored 64-bit hash
// equals h, and out grows only if the caller's buffer is too small.
// match must confirm true key equality (hash equality is necessary but
// not sufficient).
func (t *Table) ProbeAppend(h uint64, match func(*storage.Tuple) bool, out storage.TupleBatch) storage.TupleBatch {
	if t.n == 0 {
		return out
	}
	s := h & t.mask
	for {
		e := t.slots[s]
		if e.P == nil {
			return out
		}
		if e.H == h && match(e.P) {
			out = append(out, e.P)
		}
		s = (s + 1) & t.mask
	}
}

var tablePool = sync.Pool{New: func() any { return new(Table) }}

// GetTable returns a pooled table; Reset it before use.
func GetTable() *Table { return tablePool.Get().(*Table) }

// PutTable clears the table's tuple pointers (so the pool never pins
// dead tuples) and recycles it.
func PutTable(t *Table) {
	clear(t.slots[:cap(t.slots)])
	t.slots = t.slots[:0]
	t.n = 0
	tablePool.Put(t)
}
