package radix

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestTableInsertProbe(t *testing.T) {
	var tbl Table
	tbl.Reset(100)
	if tbl.Slots() != 256 {
		t.Fatalf("Reset(100) sized %d slots, want 256 (pow2 ≥ 2·100)", tbl.Slots())
	}
	tuples := make([]*storage.Tuple, 100)
	for i := range tuples {
		tuples[i] = &storage.Tuple{}
		tbl.Insert(uint64(i)*0x9e3779b97f4a7c15, tuples[i])
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tbl.Len())
	}
	all := func(*storage.Tuple) bool { return true }
	var out storage.TupleBatch
	for i := range tuples {
		out = tbl.ProbeAppend(uint64(i)*0x9e3779b97f4a7c15, all, out[:0])
		if len(out) != 1 || out[0] != tuples[i] {
			t.Fatalf("probe %d returned %d matches", i, len(out))
		}
	}
	// Missing hash: no matches.
	if out = tbl.ProbeAppend(0xffff_ffff_ffff_fffe, all, out[:0]); len(out) != 0 {
		t.Fatalf("probe of absent hash returned %d matches", len(out))
	}
}

// Duplicate hashes (same key several times) must all come back, in
// insertion order along the probe run.
func TestTableDuplicates(t *testing.T) {
	var tbl Table
	tbl.Reset(10)
	const h = 0x1234
	dups := []*storage.Tuple{{}, {}, {}}
	for _, tp := range dups {
		tbl.Insert(h, tp)
	}
	tbl.Insert(h+1, &storage.Tuple{}) // neighbor in the same probe run
	all := func(*storage.Tuple) bool { return true }
	out := tbl.ProbeAppend(h, all, nil)
	if len(out) != 3 {
		t.Fatalf("probe returned %d matches, want 3", len(out))
	}
	for i, tp := range dups {
		if out[i] != tp {
			t.Fatalf("match %d out of insertion order", i)
		}
	}
}

// A degenerate Reset hint smaller than the real cardinality must not
// overflow or loop: the table grows and stays correct.
func TestTableGrowsPastUndersizedHint(t *testing.T) {
	var tbl Table
	tbl.Reset(2) // 8 slots for what will be 1000 entries
	tuples := make([]*storage.Tuple, 1000)
	rng := rand.New(rand.NewSource(7))
	hashes := make([]uint64, len(tuples))
	for i := range tuples {
		tuples[i] = &storage.Tuple{}
		hashes[i] = rng.Uint64()
		tbl.Insert(hashes[i], tuples[i])
	}
	if tbl.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tbl.Len())
	}
	if 2*tbl.Len() > tbl.Slots() {
		t.Fatalf("load factor above 1/2 after growth: %d entries in %d slots", tbl.Len(), tbl.Slots())
	}
	all := func(*storage.Tuple) bool { return true }
	var out storage.TupleBatch
	for i := range tuples {
		out = tbl.ProbeAppend(hashes[i], all, out[:0])
		found := false
		for _, m := range out {
			if m == tuples[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("tuple %d lost after growth", i)
		}
	}
}

func TestTableZeroRows(t *testing.T) {
	var tbl Table
	tbl.Reset(0)
	out := tbl.ProbeAppend(42, func(*storage.Tuple) bool { return true }, nil)
	if len(out) != 0 {
		t.Fatalf("empty table probe returned %d matches", len(out))
	}
}

// Hash-mismatched slots must be rejected without consulting match.
func TestTableHashFirstFilter(t *testing.T) {
	var tbl Table
	tbl.Reset(4)
	// Two entries that collide on the slot mask but differ in full hash.
	mask := uint64(tbl.Slots() - 1)
	h1 := uint64(5)
	h2 := h1 + (mask + 1) // same low bits, different hash
	tbl.Insert(h1, &storage.Tuple{})
	tbl.Insert(h2, &storage.Tuple{})
	calls := 0
	out := tbl.ProbeAppend(h1, func(*storage.Tuple) bool { calls++; return true }, nil)
	if len(out) != 1 {
		t.Fatalf("probe returned %d matches, want 1", len(out))
	}
	if calls != 1 {
		t.Fatalf("match consulted %d times, want 1 (hash filter must reject the collision)", calls)
	}
}

// The probe loop must be zero-alloc with a warm table and a roomy
// caller buffer — the join's steady state.
func TestTableProbeZeroAlloc(t *testing.T) {
	tbl := GetTable()
	tbl.Reset(1024)
	hashes := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(8))
	for i := range hashes {
		hashes[i] = rng.Uint64()
		tbl.Insert(hashes[i], &storage.Tuple{})
	}
	all := func(*storage.Tuple) bool { return true }
	out := storage.GetBatch()
	allocs := testing.AllocsPerRun(10, func() {
		for _, h := range hashes {
			out = tbl.ProbeAppend(h, all, out[:0])
		}
	})
	storage.PutBatch(out)
	PutTable(tbl)
	if allocs != 0 {
		t.Fatalf("warm probe loop allocated %.1f times per run, want 0", allocs)
	}
}

// Pooled tables must not pin tuples: Put clears every slot.
func TestPutTableClears(t *testing.T) {
	tbl := GetTable()
	tbl.Reset(8)
	tbl.Insert(1, &storage.Tuple{})
	PutTable(tbl)
	for _, e := range tbl.slots[:cap(tbl.slots)] {
		if e.P != nil {
			t.Fatal("PutTable left a live tuple pointer in the pool")
		}
	}
}

func BenchmarkTableProbe(b *testing.B) {
	var tbl Table
	n := 1 << 16
	tbl.Reset(n)
	rng := rand.New(rand.NewSource(9))
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = rng.Uint64()
		tbl.Insert(hashes[i], &storage.Tuple{})
	}
	all := func(*storage.Tuple) bool { return true }
	out := make(storage.TupleBatch, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = tbl.ProbeAppend(hashes[i&(n-1)], all, out[:0])
	}
}
