// Package radix is the cache-conscious partitioning kernel under the
// radix hash join and radix DISTINCT operators. Lehman & Carey's cost
// model (§3.1) prices comparisons and data movement; on modern hardware
// the dominant "movement" cost is cache and TLB misses, and the paper's
// chained-bucket hash join pointer-chases a cold heap node on every
// probe once the build table outgrows L2. Multi-pass radix partitioning
// (Cooperman et al.'s cache-efficient sort/join accelerators; Albutiu et
// al.'s MPSM partition-local processing) turns that random traffic into
// sequential streams: both inputs are scattered into partitions by bits
// of the join-key hash, each partition is small enough that a compact
// open-addressing table over it stays L2-resident, and every downstream
// access walks memory the scatter just wrote.
//
// The kernel is histogram-then-scatter: one counting pass sizes every
// partition exactly (outputs are exact-fit — no regrow-copy, ever),
// a prefix sum turns counts into write cursors, and the scatter pass
// stages entries in per-partition write-combining blocks of WCBlock
// entries, flushing each block with a single whole-cache-line copy when
// it fills. The scatter therefore issues one streaming write per
// partition per WCBlock entries instead of one random write per entry —
// the software write-combining trick from the radix-join literature.
// Multi-pass plans refine partitions most-significant-bits first, so no
// pass fans out wider than its write-combining buffers and TLB reach
// allow; the scatter is stable, so entries within a final partition keep
// their input order (the radix DISTINCT relies on this for
// first-occurrence semantics).
//
// Partitioner scratch (histograms, cursors, write-combining blocks, the
// ping-pong buffer) is recycled through sync.Pool: a warmed partitioner
// partitions an input with zero heap allocations.
package radix

import (
	"sync"

	"repro/internal/meter"
	"repro/internal/storage"
)

// WCBlock is the write-combining staging block: 64 entries per partition
// are gathered in a dense per-partition block and flushed with one copy
// when full. At 16 bytes per entry a block is 1 KiB — 16 cache lines
// written sequentially — so the scatter's random traffic is confined to
// the (cache-resident) staging area while main-memory writes stream.
const WCBlock = 64

// MaxBits caps a plan's total radix width: 2^16 partitions is already
// far past the point where per-partition bookkeeping dominates.
const MaxBits = 16

// Entry is one element of a partitioning run: a precomputed 64-bit key
// hash and an opaque payload (a tuple pointer for joins, a row index for
// DISTINCT). Partitioning consumes only H, so the payload is a type
// parameter and the kernel compiles to a tight loop for each shape.
type Entry[P any] struct {
	H uint64 // 64-bit key hash (storage.Hash / exec.KeyHash)
	P P      // payload carried alongside the hash
}

// TupleEntry is the join instantiation: hash plus tuple pointer.
type TupleEntry = Entry[*storage.Tuple]

// RowEntry is the DISTINCT instantiation: hash plus temp-list row index.
type RowEntry = Entry[int32]

// Plan is a multi-pass partitioning plan: Bits[k] is the radix width of
// pass k, most significant bits first. The partition index of an entry
// is the top TotalBits() bits of its hash — the high half, so the low
// bits stay random for the open-addressing tables (which mask with low
// bits) and decorrelated from the parallel executor's partition routing.
type Plan struct {
	Bits []uint
}

// TotalBits sums the per-pass widths.
func (p Plan) TotalBits() uint {
	var t uint
	for _, b := range p.Bits {
		t += b
	}
	return t
}

// Fanout is the final partition count, 2^TotalBits.
func (p Plan) Fanout() int { return 1 << p.TotalBits() }

// Passes is the number of scatter passes.
func (p Plan) Passes() int { return len(p.Bits) }

// Stats summarizes one partitioning run for traces and EXPLAIN ANALYZE.
type Stats struct {
	Passes  int // scatter passes executed
	Fanout  int // final partition count
	Rows    int // entries partitioned
	MaxPart int // largest final partition

	// Defense counters filled in by the budgeted join (zero on the
	// unbudgeted path): fat partitions recursively re-split because
	// their table would not fit the memory grant, and partition pairs
	// whose build/probe roles were reversed because the forecast build
	// side turned out larger after partitioning.
	Repartitions int
	Reversed     int
}

// StatsOf derives Stats from a plan and the partition offsets a
// Partition call returned.
func StatsOf(pl Plan, offs []int) Stats {
	s := Stats{Passes: pl.Passes(), Fanout: pl.Fanout()}
	for i := 0; i+1 < len(offs); i++ {
		n := offs[i+1] - offs[i]
		s.Rows += n
		if n > s.MaxPart {
			s.MaxPart = n
		}
	}
	return s
}

// Skew is the largest partition relative to the mean (1.0 = perfectly
// balanced; Fanout = everything landed in one partition). 0 when empty.
func (s Stats) Skew() float64 {
	if s.Rows == 0 || s.Fanout == 0 {
		return 0
	}
	mean := float64(s.Rows) / float64(s.Fanout)
	return float64(s.MaxPart) / mean
}

// TableBytes is the memory footprint of a flat build Table over n
// entries: the slot array is the smallest power of two ≥ 2n (min 8) at
// 16 bytes per TupleEntry slot. This is the quantity the budgeted join
// grants before every partition build.
func TableBytes(n int) int64 {
	need := 8
	for need < 2*n {
		need <<= 1
	}
	return int64(need) * 16
}

// Partitioner holds the kernel's reusable scratch: per-pass histogram
// and cursor arrays, the write-combining staging area, the ping-pong
// output buffer, and two partition-boundary arrays. All of it grows to
// the largest plan/input seen and is then reused allocation-free;
// Get/Put recycle whole partitioners through a pool.
type Partitioner[P any] struct {
	hist []int      // per-pass partition counts
	cur  []int      // per-pass write cursors
	wcn  []int      // write-combining fill counts
	wc   []Entry[P] // write-combining staging, fanout×WCBlock entries
	buf  []Entry[P] // ping-pong scatter buffer, len(input) entries
	bndA []int      // partition boundaries (ping)
	bndB []int      // partition boundaries (pong)
}

// ensure grows the scratch for the given plan and input size.
func (p *Partitioner[P]) ensure(pl Plan, n int) {
	maxF := 1
	for _, b := range pl.Bits {
		if f := 1 << b; f > maxF {
			maxF = f
		}
	}
	if cap(p.hist) < maxF {
		p.hist = make([]int, maxF)
		p.cur = make([]int, maxF)
		p.wcn = make([]int, maxF)
	}
	if cap(p.wc) < maxF*WCBlock {
		p.wc = make([]Entry[P], maxF*WCBlock)
	}
	if cap(p.buf) < n {
		p.buf = make([]Entry[P], n)
	}
	if need := pl.Fanout() + 1; cap(p.bndA) < need {
		p.bndA = make([]int, 0, need)
		p.bndB = make([]int, 0, need)
	}
}

// Partition scatters entries into the plan's 2^TotalBits partitions and
// returns the partitioned layout plus Fanout()+1 boundary offsets:
// partition i is result[offs[i]:offs[i+1]]. The scatter is stable —
// entries within a partition keep their input order. The returned slices
// alias either the input or the partitioner's internal buffer and stay
// valid until the next Partition call or Put on this partitioner; the
// input slice's order is clobbered either way (the kernel ping-pongs
// between the two buffers).
//
// Each pass is metered as one RadixPass and one DataMove per entry; the
// final fanout is metered as Partitions. A nil meter is free.
func (p *Partitioner[P]) Partition(entries []Entry[P], pl Plan, m *meter.Counters) ([]Entry[P], []int) {
	return p.PartitionFrom(entries, pl, 0, m)
}

// PartitionFrom is Partition with the radix digits taken below the top
// `skip` hash bits: pass k of the plan consumes bits
// [64-skip-cum(k) .. 64-skip-cum(k-1)). It is the recursive-repartition
// entry point — a fat partition produced by a skip=0 run over B bits has
// identical top-B hash bits throughout, so re-splitting it with
// skip=B+… consumes the next-finer digits and refines it in place. A
// skip of 0 is exactly Partition.
func (p *Partitioner[P]) PartitionFrom(entries []Entry[P], pl Plan, skip uint, m *meter.Counters) ([]Entry[P], []int) {
	if pl.TotalBits() > MaxBits {
		panic("radix: plan exceeds MaxBits")
	}
	if skip+pl.TotalBits() > 64 {
		panic("radix: skip + plan exceeds hash width")
	}
	n := len(entries)
	p.ensure(pl, n)
	fanout := pl.Fanout()
	if pl.Passes() == 0 || fanout <= 1 || n == 0 {
		// Degenerate: one partition (or nothing). Boundaries are all
		// zeros followed by n so callers can still index every partition.
		bnd := p.bndA[:0]
		for i := 0; i < fanout; i++ {
			bnd = append(bnd, 0)
		}
		bnd = append(bnd, n)
		p.bndA = bnd
		return entries, bnd
	}

	src, dst := entries, p.buf[:n]
	cur := append(p.bndA[:0], 0, n)
	next := p.bndB
	var cum uint
	for _, b := range pl.Bits {
		cum += b
		f := 1 << b
		shift := 64 - skip - cum
		mask := uint64(f - 1)
		next = next[:0]
		for j := 0; j+1 < len(cur); j++ {
			next = p.scatter(src, dst, cur[j], cur[j+1], shift, mask, f, next)
		}
		next = append(next, n)
		cur, next = next, cur
		src, dst = dst, src
		m.AddRadixPass(1)
		m.AddMove(int64(n))
	}
	p.bndA, p.bndB = cur[:len(cur):cap(cur)], next[:0:cap(next)]
	m.AddPartition(int64(fanout))
	return src, cur
}

// scatter partitions src[lo:hi] into dst[lo:hi] on (H>>shift)&mask:
// histogram, prefix-sum into exact write cursors (appending each child
// partition's start to bounds), then a stable scatter through the
// write-combining blocks — full blocks flush as one sequential copy.
func (p *Partitioner[P]) scatter(src, dst []Entry[P], lo, hi int, shift uint, mask uint64, f int, bounds []int) []int {
	hist := p.hist[:f]
	for i := range hist {
		hist[i] = 0
	}
	seg := src[lo:hi]
	for i := range seg {
		hist[(seg[i].H>>shift)&mask]++
	}
	curs := p.cur[:f]
	pos := lo
	for c := 0; c < f; c++ {
		bounds = append(bounds, pos)
		curs[c] = pos
		pos += hist[c]
	}
	wcn := p.wcn[:f]
	for i := range wcn {
		wcn[i] = 0
	}
	wc := p.wc
	for i := range seg {
		c := int((seg[i].H >> shift) & mask)
		base := c * WCBlock
		wc[base+wcn[c]] = seg[i]
		wcn[c]++
		if wcn[c] == WCBlock {
			copy(dst[curs[c]:curs[c]+WCBlock], wc[base:base+WCBlock])
			curs[c] += WCBlock
			wcn[c] = 0
		}
	}
	for c := 0; c < f; c++ {
		if k := wcn[c]; k > 0 {
			base := c * WCBlock
			copy(dst[curs[c]:curs[c]+k], wc[base:base+k])
			curs[c] += k
		}
	}
	return bounds
}

// Pools. One pool per payload shape so Get returns ready-typed scratch;
// Put drops any payload pointers so a pooled partitioner never pins dead
// tuples across queries.

var tuplePartPool = sync.Pool{New: func() any { return new(Partitioner[*storage.Tuple]) }}
var rowPartPool = sync.Pool{New: func() any { return new(Partitioner[int32]) }}

// GetTuplePartitioner returns a pooled partitioner for join entries.
func GetTuplePartitioner() *Partitioner[*storage.Tuple] {
	return tuplePartPool.Get().(*Partitioner[*storage.Tuple])
}

// PutTuplePartitioner clears the tuple pointers held in the staging and
// ping-pong buffers and recycles the partitioner.
func PutTuplePartitioner(p *Partitioner[*storage.Tuple]) {
	clear(p.wc)
	clear(p.buf[:cap(p.buf)])
	tuplePartPool.Put(p)
}

// GetRowPartitioner returns a pooled partitioner for row-index entries.
func GetRowPartitioner() *Partitioner[int32] {
	return rowPartPool.Get().(*Partitioner[int32])
}

// PutRowPartitioner recycles a row-index partitioner (no pointers to
// clear).
func PutRowPartitioner(p *Partitioner[int32]) {
	rowPartPool.Put(p)
}
