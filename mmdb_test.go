package mmdb

import (
	"strings"
	"testing"
)

// openEmpDept builds the paper's Employee/Department database (§2.1,
// Figure 1) through the public API.
func openEmpDept(t testing.TB, opts Options) (*Database, *Table, *Table) {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	dept, err := db.CreateTable("dept", []Field{
		{Name: "name", Type: TypeString},
		{Name: "id", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := db.CreateTable("emp", []Field{
		{Name: "name", Type: TypeString},
		{Name: "id", Type: TypeInt},
		{Name: "age", Type: TypeInt},
		{Name: "dept", Type: TypeRef, ForeignKey: "dept"},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	return db, emp, dept
}

func seedEmpDept(t testing.TB, emp, dept *Table) map[string]*Tuple {
	t.Helper()
	depts := map[string]*Tuple{}
	for _, d := range []struct {
		name string
		id   int64
	}{{"Toy", 459}, {"Shoe", 409}, {"Linen", 411}, {"Paint", 455}} {
		tp, err := dept.Insert(Str(d.name), Int(d.id))
		if err != nil {
			t.Fatal(err)
		}
		depts[d.name] = tp
	}
	for _, e := range []struct {
		name    string
		id, age int64
		dept    string
	}{
		{"Dave", 23, 24, "Toy"},
		{"Suzan", 12, 27, "Toy"},
		{"Yaman", 44, 54, "Linen"},
		{"Jane", 43, 47, "Linen"},
		{"Cindy", 22, 22, "Shoe"},
		{"Umar", 51, 68, "Shoe"},
		{"Vera", 52, 71, "Toy"},
	} {
		if _, err := emp.Insert(Str(e.name), Int(e.id), Int(e.age), Ref(depts[e.dept])); err != nil {
			t.Fatal(err)
		}
	}
	return depts
}

func names(r *Result, col int) []string {
	var out []string
	for i := 0; i < r.Len(); i++ {
		out = append(out, r.Row(i)[col].Str())
	}
	return out
}

func TestQuery1PrecomputedJoin(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	if _, err := emp.CreateIndex("by_age", "age", TTree); err != nil {
		t.Fatal(err)
	}
	// Query 1: names, ages and department names of employees over 65.
	res, err := db.Query("emp").
		Where("age", Gt, Int(65)).
		Join("dept", "dept", Self).
		Select("emp.name", "emp.age", "dept.name").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows=%d plan:\n%s", res.Len(), res.Plan())
	}
	if !strings.Contains(res.Plan(), "precomputed join") {
		t.Fatalf("planner missed the precomputed join:\n%s", res.Plan())
	}
	if !strings.Contains(res.Plan(), "tree range") {
		t.Fatalf("planner missed the range index:\n%s", res.Plan())
	}
	got := map[string]bool{}
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		got[row[0].Str()+"/"+row[2].Str()] = true
	}
	if !got["Umar/Shoe"] || !got["Vera/Toy"] {
		t.Fatalf("got %v", got)
	}
}

func TestQuery2PointerJoin(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	if _, err := dept.CreateIndex("by_name", "name", TTree); err != nil {
		t.Fatal(err)
	}
	// Query 2: names of employees in the Toy or Shoe departments. Two
	// selections then a pointer join (one per department, united).
	all := map[string]bool{}
	for _, d := range []string{"Toy", "Shoe"} {
		res, err := db.Query("dept").
			Where("name", Eq, Str(d)).
			Join("emp", Self, "dept").
			Select("emp.name").
			Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names(res, 0) {
			all[n] = true
		}
	}
	want := []string{"Dave", "Suzan", "Cindy", "Umar", "Vera"}
	if len(all) != len(want) {
		t.Fatalf("got %v", all)
	}
	for _, n := range want {
		if !all[n] {
			t.Fatalf("missing %s in %v", n, all)
		}
	}
}

func TestPlannerJoinChoices(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)

	// Value join with no useful indices: hash join.
	res, err := db.Query("emp").Join("dept", "dept", Self).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan(), "precomputed") {
		t.Fatalf("FK identity join should be precomputed:\n%s", res.Plan())
	}

	// Join on id columns with T Trees on both: tree merge.
	res, err = db.Query("emp").Join("dept", "id", "id").Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan(), "Tree Merge") {
		t.Fatalf("both-indices join should be Tree Merge:\n%s", res.Plan())
	}

	// Filtered outer (no outer index anymore): hash join on values.
	res, err = db.Query("emp").Where("age", Gt, Int(30)).Join("dept", "id", "id").Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan(), "Hash Join") && !strings.Contains(res.Plan(), "Tree Join") {
		t.Fatalf("filtered-outer join plan:\n%s", res.Plan())
	}
}

func TestSelectionPathsViaAPI(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	if _, err := emp.CreateIndex("by_name_hash", "name", ModLinearHash); err != nil {
		t.Fatal(err)
	}
	// Hash index beats everything for equality.
	res, err := db.Query("emp").Where("name", Eq, Str("Dave")).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !strings.Contains(res.Plan(), "hash lookup") {
		t.Fatalf("len=%d plan:\n%s", res.Len(), res.Plan())
	}
	// Primary T Tree serves id equality.
	res, err = db.Query("emp").Where("id", Eq, Int(44)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !strings.Contains(res.Plan(), "tree lookup") {
		t.Fatalf("len=%d plan:\n%s", res.Len(), res.Plan())
	}
	// Unindexed column: sequential scan.
	res, err = db.Query("emp").Where("age", Eq, Int(24)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !strings.Contains(res.Plan(), "sequential scan") {
		t.Fatalf("len=%d plan:\n%s", res.Len(), res.Plan())
	}
	// Conjunction with residual filter.
	res, err = db.Query("emp").Where("id", Gt, Int(20)).Where("age", Lt, Int(30)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // Dave (23,24) and Cindy (22,22)
		t.Fatalf("conjunction len=%d plan:\n%s", res.Len(), res.Plan())
	}
	// Strict bound excludes the endpoint.
	res, err = db.Query("emp").Where("id", Gt, Int(51)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("Gt len=%d", res.Len())
	}
	res, err = db.Query("emp").Where("id", Ge, Int(51)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("Ge len=%d", res.Len())
	}
	_ = dept
}

func TestDistinct(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	res, err := db.Query("emp").Join("dept", "dept", Self).Select("dept.name").Distinct().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // Toy, Shoe, Linen (Paint has no employees)
		t.Fatalf("distinct depts = %d: %v", res.Len(), names(res, 0))
	}
}

func TestUniquePrimaryIndexEnforced(t *testing.T) {
	_, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	before := emp.Cardinality()
	// id 23 already exists (Dave): the primary unique index rejects the
	// insert before the relation changes.
	if _, err := emp.Insert(Str("Dup"), Int(23), Int(30), Null); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	if emp.Cardinality() != before {
		t.Fatalf("rejected insert changed cardinality: %d -> %d", before, emp.Cardinality())
	}
	// Updating another row onto an existing key is rejected too.
	res, _ := db2Query(t, emp)
	if err := emp.Update(res, "id", Int(23)); err == nil {
		t.Fatal("duplicate key via update accepted")
	}
	// Updating a row to its own key is fine (no self-collision).
	dave, _ := lookupByID(t, emp, 23)
	if err := emp.Update(dave, "id", Int(23)); err != nil {
		t.Fatalf("self-key update rejected: %v", err)
	}
	_ = dept
}

// db2Query fetches some non-Dave tuple for the duplicate-update check.
func db2Query(t *testing.T, emp *Table) (*Tuple, error) {
	t.Helper()
	tp, err := lookupByID(t, emp, 44)
	return tp, err
}

func lookupByID(t *testing.T, emp *Table, id int64) (*Tuple, error) {
	t.Helper()
	res, err := emp.db.Query("emp").Where("id", Eq, Int(id)).Run()
	if err != nil || res.Len() != 1 {
		t.Fatalf("lookup %d: len=%d err=%v", id, res.Len(), err)
	}
	return res.Tuples(0)[0], nil
}

func TestTransactionsThroughAPI(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	depts := seedEmpDept(t, emp, dept)
	tx := db.Begin()
	if err := tx.Insert(emp, Str("Walt"), Int(99), Int(40), Ref(depts["Toy"])); err != nil {
		t.Fatal(err)
	}
	ins, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Field(0).Str() != "Walt" {
		t.Fatalf("inserted %v", ins)
	}
	// The new tuple is immediately visible through indices.
	res, err := db.Query("emp").Where("id", Eq, Int(99)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("len=%d", res.Len())
	}
	// Abort leaves nothing behind.
	tx2 := db.Begin()
	if err := tx2.Insert(emp, Str("Nobody"), Int(100), Int(1), Null); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	res, _ = db.Query("emp").Where("id", Eq, Int(100)).Run()
	if res.Len() != 0 {
		t.Fatal("aborted insert visible")
	}
	// Update via txn repositions index entries.
	tx3 := db.Begin()
	if err := tx3.Update(emp, ins[0], "id", Int(101)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("emp").Where("id", Eq, Int(101)).Run()
	if res.Len() != 1 {
		t.Fatal("updated key not indexed")
	}
}

func TestDurabilityThroughAPI(t *testing.T) {
	dir := t.TempDir()
	db, emp, dept := openEmpDept(t, Options{Dir: dir})
	depts := seedEmpDept(t, emp, dept)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint change, left only in the accumulation log.
	if _, err := emp.Insert(Str("Late"), Int(77), Int(33), Ref(depts["Paint"])); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: declare the same schema, recover, query.
	db2, emp2, _ := openEmpDept(t, Options{Dir: dir})
	if err := db2.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if emp2.Cardinality() != 8 {
		t.Fatalf("recovered %d employees", emp2.Cardinality())
	}
	res, err := db2.Query("emp").Where("id", Eq, Int(77)).Join("dept", "dept", Self).Select("dept.name").Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0].Str() != "Paint" {
		t.Fatalf("post-checkpoint insert not recovered correctly: %d rows", res.Len())
	}
}

func TestQueryErrors(t *testing.T) {
	db, _, _ := openEmpDept(t, Options{})
	if _, err := db.Query("nope").Run(); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Query("emp").Where("nope", Eq, Int(1)).Run(); err == nil {
		t.Error("unknown where column accepted")
	}
	if _, err := db.Query("emp").Join("nope", "id", "id").Run(); err == nil {
		t.Error("unknown join table accepted")
	}
	if _, err := db.Query("emp").Join("dept", "nope", "id").Run(); err == nil {
		t.Error("unknown join column accepted")
	}
	if _, err := db.Query("emp").Select("nope").Run(); err == nil {
		t.Error("unknown select column accepted")
	}
	if _, err := db.Query("emp").Join("dept", "id", "id").Join("dept", "id", "id").Run(); err == nil {
		t.Error("three-way join accepted")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db, _ := Open(Options{})
	if _, err := db.CreateTable("t", nil, "x", TTree); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := db.CreateTable("t", []Field{{Name: "a", Type: TypeInt}}, "nope", TTree); err == nil {
		t.Error("bad primary column accepted")
	}
	if _, err := db.CreateTable("t", []Field{{Name: "a", Type: TypeInt}}, "a", TTree); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", []Field{{Name: "a", Type: TypeInt}}, "a", TTree); err == nil {
		t.Error("duplicate table accepted")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tables()=%v", got)
	}
}
