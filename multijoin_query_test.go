package mmdb

import (
	"fmt"
	"strings"
	"testing"
)

// Multi-join planner tests: permutation equivalence (every executable
// join order yields the same result multiset), the knob surface
// (JoinOrder / ForceJoinOrder), the forecast audit, and the SQL path.

// permutations returns every ordering of 0..n-1.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// checkAllOrders runs build() under every forced permutation of names,
// requiring each executable order to reproduce want (multiset and
// sameMultiset live in parallel_query_test.go) and each rejected order
// to fail with the cross-product error. Returns how many orders
// executed.
func checkAllOrders(t *testing.T, names []string, want map[string]int, build func() *Query) int {
	t.Helper()
	valid := 0
	for _, perm := range permutations(len(names)) {
		order := make([]string, len(perm))
		for i, p := range perm {
			order[i] = names[p]
		}
		res, err := build().ForceJoinOrder(order...).Run()
		if err != nil {
			if !strings.Contains(err.Error(), "cross product") {
				t.Fatalf("order %v: unexpected error: %v", order, err)
			}
			continue
		}
		valid++
		sameMultiset(t, fmt.Sprintf("order %v", order), multiset(t, res), want)
	}
	return valid
}

// openChain4 builds a 4-table chain t1 -a=id- t2 -b=id- t3 -c=id- t4
// with deliberately dangling keys at every step, and returns the
// expected join count computed by brute force over the inserted data.
func openChain4(t testing.TB) (*Database, int) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, extra string) *Table {
		fields := []Field{{Name: "id", Type: TypeInt}}
		if extra != "" {
			fields = append(fields, Field{Name: extra, Type: TypeInt})
		}
		tb, err := db.CreateTable(name, fields, "id", TTree)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	t1, t2, t3, t4 := mk("t1", "a"), mk("t2", "b"), mk("t3", "c"), mk("t4", "")
	var as, bs, cs []int64
	var t4ids []int64
	for i := int64(0); i < 10; i++ {
		if _, err := t4.Insert(Int(i)); err != nil {
			t.Fatal(err)
		}
		t4ids = append(t4ids, i)
	}
	for i := int64(0); i < 20; i++ {
		c := i % 12 // c >= 10 dangles
		if _, err := t3.Insert(Int(i), Int(c)); err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	for i := int64(0); i < 30; i++ {
		b := i % 25 // b >= 20 dangles
		if _, err := t2.Insert(Int(i), Int(b)); err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	for i := int64(0); i < 40; i++ {
		a := i % 35 // a >= 30 dangles
		if _, err := t1.Insert(Int(i), Int(a)); err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
	}
	want := 0
	for _, a := range as {
		if a >= int64(len(bs)) {
			continue
		}
		b := bs[a]
		if b >= int64(len(cs)) {
			continue
		}
		c := cs[b]
		if c < int64(len(t4ids)) {
			want++
		}
	}
	return db, want
}

func chainQuery(db *Database) *Query {
	return db.Query("t1").
		Join("t2", "a", "id").
		Join("t3", "t2.b", "id").
		Join("t4", "t3.c", "id")
}

// TestMultiJoinChainAllOrders: on a 4-chain, exactly the orders whose
// every prefix is a contiguous chain interval execute (8 of 24), and
// all of them produce the same multiset as the planner's own choice.
func TestMultiJoinChainAllOrders(t *testing.T) {
	db, wantLen := openChain4(t)
	auto, err := chainQuery(db).Run()
	if err != nil {
		t.Fatal(err)
	}
	if auto.Len() != wantLen {
		t.Fatalf("auto order: %d rows, brute force says %d", auto.Len(), wantLen)
	}
	want := multiset(t, auto)
	valid := checkAllOrders(t, []string{"t1", "t2", "t3", "t4"}, want, func() *Query { return chainQuery(db) })
	if valid != 8 {
		t.Fatalf("%d orders executed, want the 8 contiguous-prefix chain orders", valid)
	}
}

// openStar4 builds fact(id, da, db_, dc, v) joined to three dimensions
// of very different selectivity: dima matches every fact row, dimb 10%,
// dimc 5%. factRows must be a multiple of 500.
func openStar4(t testing.TB, factRows int) *Database {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStarInto(t, db, factRows)
	return db
}

// seedStarInto creates and fills the star-schema tables in db.
func seedStarInto(t testing.TB, db *Database, factRows int) {
	t.Helper()
	dim := func(name string, n int) {
		tb, err := db.CreateTable(name, []Field{
			{Name: "id", Type: TypeInt},
			{Name: "name", Type: TypeString},
		}, "id", TTree)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := tb.Insert(Int(int64(i)), Str(fmt.Sprintf("%s-%d", name, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	dim("dima", 500)
	dim("dimb", 50)
	dim("dimc", 25)
	fact, err := db.CreateTable("fact", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "da", Type: TypeInt},
		{Name: "db_", Type: TypeInt},
		{Name: "dc", Type: TypeInt},
		{Name: "v", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < factRows; i++ {
		k := int64(i % 500)
		if _, err := fact.Insert(Int(int64(i)), Int(k), Int(k), Int(k), Int(int64(i)*7)); err != nil {
			t.Fatal(err)
		}
	}
}

func starQuery(db *Database) *Query {
	return db.Query("fact").
		Join("dima", "da", "id").
		Join("dimb", "db_", "id").
		Join("dimc", "dc", "id")
}

// TestMultiJoinStarAllOrders: in a star every executable order has the
// fact table first or second (dimensions only connect through it).
func TestMultiJoinStarAllOrders(t *testing.T) {
	db := openStar4(t, 500)
	auto, err := starQuery(db).Run()
	if err != nil {
		t.Fatal(err)
	}
	if auto.Len() != 25 { // i%500 < 25, once per value
		t.Fatalf("auto order: %d rows, want 25", auto.Len())
	}
	want := multiset(t, auto)
	valid := checkAllOrders(t, []string{"fact", "dima", "dimb", "dimc"}, want, func() *Query { return starQuery(db) })
	// fact first: 3! dim orders; fact second: 3 choices of leading dim × 2!.
	if valid != 12 {
		t.Fatalf("%d orders executed, want 12", valid)
	}
}

// openCyclic3 builds a triangle: a joins b, b joins c, and a closing
// a-c edge that the executor must apply as a residual check whichever
// order runs. Returns the brute-forced expected count.
func openCyclic3(t testing.TB) (*Database, int) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateTable("c", []Field{{Name: "id", Type: TypeInt}}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("b", []Field{
		{Name: "id", Type: TypeInt}, {Name: "cid", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.CreateTable("a", []Field{
		{Name: "id", Type: TypeInt}, {Name: "bid", Type: TypeInt}, {Name: "cid", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	type brow struct{ id, cid int64 }
	type arow struct{ id, bid, cid int64 }
	var bs []brow
	var as []arow
	for i := int64(0); i < 5; i++ {
		if _, err := c.Insert(Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 6; i++ {
		r := brow{id: i, cid: i % 5}
		if _, err := b.Insert(Int(r.id), Int(r.cid)); err != nil {
			t.Fatal(err)
		}
		bs = append(bs, r)
	}
	for i := int64(0); i < 24; i++ {
		r := arow{id: i, bid: i % 6, cid: (i * 3) % 5} // only some close the triangle
		if _, err := a.Insert(Int(r.id), Int(r.bid), Int(r.cid)); err != nil {
			t.Fatal(err)
		}
		as = append(as, r)
	}
	want := 0
	for _, ar := range as {
		for _, br := range bs {
			if ar.bid != br.id {
				continue
			}
			for ci := int64(0); ci < 5; ci++ {
				if br.cid == ci && ar.cid == ci {
					want++
				}
			}
		}
	}
	return db, want
}

func cyclicQuery(db *Database) *Query {
	return db.Query("a").
		Join("b", "bid", "id").
		Join("c", "b.cid", "id").
		On("a.cid", "c.id")
}

// TestMultiJoinCyclicResidual: the closing edge of a cyclic graph is
// enforced in every order — as a second hash edge or a residual check —
// and the count matches brute force. A triangle is fully connected, so
// all 6 permutations execute.
func TestMultiJoinCyclicResidual(t *testing.T) {
	db, wantLen := openCyclic3(t)
	auto, err := cyclicQuery(db).Run()
	if err != nil {
		t.Fatal(err)
	}
	if auto.Len() != wantLen {
		t.Fatalf("auto order: %d rows, brute force says %d", auto.Len(), wantLen)
	}
	want := multiset(t, auto)
	valid := checkAllOrders(t, []string{"a", "b", "c"}, want, func() *Query { return cyclicQuery(db) })
	if valid != 6 {
		t.Fatalf("%d orders executed, want all 6 (triangle is fully connected)", valid)
	}
}

// TestMultiJoinCyclicWithPredicate: the residual closing edge composes
// with a WHERE filter on the driving table.
func TestMultiJoinCyclicWithPredicate(t *testing.T) {
	db, _ := openCyclic3(t)
	res, err := cyclicQuery(db).Where("a.id", Lt, Int(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over the generators with id < 12.
	want := 0
	for i := int64(0); i < 12; i++ {
		bid, acid := i%6, (i*3)%5
		if bid%5 == acid { // b.cid == a.cid (b row bid has cid = bid%5)
			want++
		}
	}
	if res.Len() != want {
		t.Fatalf("filtered cyclic join: %d rows, want %d", res.Len(), want)
	}
}

// TestOnErrors: the closing-edge API rejects malformed edges.
func TestOnErrors(t *testing.T) {
	db, _ := openCyclic3(t)
	if _, err := db.Query("a").On("bid", "cid").Run(); err == nil ||
		!strings.Contains(err.Error(), "at least two relations") {
		t.Fatalf("On with one relation: %v", err)
	}
	if _, err := db.Query("a").Join("b", "bid", "id").On("a.bid", "a.cid").Run(); err == nil ||
		!strings.Contains(err.Error(), "two different relations") {
		t.Fatalf("On with both sides on one relation: %v", err)
	}
	if _, err := db.Query("a").Join("b", "bid", "id").On("a.nope", "b.id").Run(); err == nil {
		t.Fatal("On with unknown column should fail")
	}
}

// sumStageActuals adds up the observed output rows of every pipeline
// stage — the total intermediate-result volume the order produced.
func sumStageActuals(tr *QueryTrace) float64 {
	sum := 0.0
	for _, d := range tr.Decisions {
		if d.Name == "join stage" {
			sum += d.Actual
		}
	}
	return sum
}

// TestMultiJoinPlannerBeatsWorstOrder: on a skewed star (one dimension
// keeps every fact row, the others are selective) the DP order's total
// intermediate volume must be at least 2× smaller than the naive
// "big dimension first" order, while both produce the same cardinality.
func TestMultiJoinPlannerBeatsWorstOrder(t *testing.T) {
	db := openStar4(t, 5000)
	_, trAuto, err := starQuery(db).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	d := findDecision(trAuto, "join order")
	if d == nil {
		t.Fatalf("no join order decision in trace: %+v", trAuto.Decisions)
	}
	if !strings.Contains(d.Chosen, "(dp)") {
		t.Fatalf("planner did not use exact DP on 4 relations: %q", d.Chosen)
	}
	_, trWorst, err := starQuery(db).ForceJoinOrder("dima", "fact", "dimb", "dimc").Analyze()
	if err != nil {
		t.Fatal(err)
	}
	dw := findDecision(trWorst, "join order")
	if dw == nil || !strings.Contains(dw.Chosen, "(forced)") {
		t.Fatalf("forced run's join order decision: %+v", dw)
	}
	if d.Actual != dw.Actual {
		t.Fatalf("result cardinality differs: dp %v vs forced %v", d.Actual, dw.Actual)
	}
	auto, worst := sumStageActuals(trAuto), sumStageActuals(trWorst)
	if auto <= 0 || worst <= 0 {
		t.Fatalf("missing stage audits: auto=%v worst=%v", auto, worst)
	}
	if auto*2 > worst {
		t.Fatalf("DP order not ≥2× better: %v intermediate rows vs %v", auto, worst)
	}
}

// openHierarchy builds a staff table whose boss column points at other
// staff rows by id — the self-join fixture. Row 0 is its own boss.
func openHierarchy(t testing.TB) (*Database, int) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	staff, err := db.CreateTable("staff", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "boss", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	const n = 13
	for i := int64(0); i < n; i++ {
		boss := int64(0)
		if i > 0 {
			boss = (i - 1) / 2
		}
		if _, err := staff.Insert(Int(i), Int(boss)); err != nil {
			t.Fatal(err)
		}
	}
	return db, n // every row has exactly one boss and grand-boss
}

func hierarchyQuery(db *Database) *Query {
	return db.Query("staff").As("e").
		JoinAs("staff", "m", "e.boss", "id").
		JoinAs("staff", "g", "m.boss", "id").
		Select("e.id", "m.id", "g.id")
}

// TestMultiJoinSelfJoinAliases: a three-level self-join through aliases
// resolves, plans, and is permutation-equivalent (4 of 6 orders keep the
// e–m–g chain connected).
func TestMultiJoinSelfJoinAliases(t *testing.T) {
	db, want := openHierarchy(t)
	auto, err := hierarchyQuery(db).Run()
	if err != nil {
		t.Fatal(err)
	}
	if auto.Len() != want {
		t.Fatalf("self-join chain: %d rows, want %d", auto.Len(), want)
	}
	wantSet := multiset(t, auto)
	valid := checkAllOrders(t, []string{"e", "m", "g"}, wantSet, func() *Query { return hierarchyQuery(db) })
	if valid != 4 {
		t.Fatalf("%d orders executed, want 4 contiguous chain orders", valid)
	}
	// Rejoining under an in-scope name must demand a distinct alias.
	if _, err := db.Query("staff").Join("staff", "boss", "id").Run(); err == nil ||
		!strings.Contains(err.Error(), "already in scope") {
		t.Fatalf("duplicate scope name: %v", err)
	}
}

// TestMultiJoinQualifiedColumns: alias-qualified names flow through
// projection, GROUP BY, and ORDER BY after a multi-join (satellite 1).
func TestMultiJoinQualifiedColumns(t *testing.T) {
	db, wantLen := openChain4(t)
	res, err := chainQuery(db).Select("t1.id", "t3.c").Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != wantLen {
		t.Fatalf("projected join: %d rows, want %d", res.Len(), wantLen)
	}
	cols := res.Columns()
	if len(cols) != 2 || cols[0] != "t1.id" || cols[1] != "t3.c" {
		t.Fatalf("projected columns = %v", cols)
	}

	grp, err := chainQuery(db).GroupBy("t4.id").Agg(AggCount, "*").Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < grp.Len(); i++ {
		row := grp.Row(i)
		total += int(row[len(row)-1].Int())
	}
	if total != wantLen {
		t.Fatalf("GROUP BY t4.id counts sum to %d, want %d", total, wantLen)
	}

	ord, err := chainQuery(db).Select("t1.id").OrderBy("t1.id", true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ord.Len() != wantLen {
		t.Fatalf("ordered join: %d rows, want %d", ord.Len(), wantLen)
	}
	for i := 1; i < ord.Len(); i++ {
		if ord.Row(i)[0].Int() > ord.Row(i - 1)[0].Int() {
			t.Fatalf("ORDER BY t1.id DESC violated at row %d", i)
		}
	}
}

// TestMultiJoinDerefStage: a Ref column joined on SELF executes as a
// pointer dereference stage inside the pipeline, not a hash build.
func TestMultiJoinDerefStage(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	bonus, err := db.CreateTable("bonus", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "emp_id", Type: TypeInt},
		{Name: "amt", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	for i, eid := range []int64{23, 12, 44, 22, 23} {
		if _, err := bonus.Insert(Int(int64(i)), Int(eid), Int(int64(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query("emp").
		Join("dept", "dept", Self).
		Join("bonus", "emp.id", "emp_id").
		ForceJoinOrder("emp", "dept", "bonus").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 { // one row per bonus, each bonus names a real emp
		t.Fatalf("emp⋈dept⋈bonus: %d rows, want 5", res.Len())
	}
	if p := res.Plan(); !strings.Contains(p, "pointer deref") {
		t.Fatalf("plan does not use the deref stage:\n%s", p)
	}
}

// TestMultiJoinSQL: the SQL surface drives the same planner — chained
// JOINs, aliases, and EXPLAIN ANALYZE exposing the order decision.
func TestMultiJoinSQL(t *testing.T) {
	db, wantLen := openChain4(t)
	er, err := db.Exec("SELECT t1.id, t4.id FROM t1 JOIN t2 ON t1.a = t2.id " +
		"JOIN t3 ON t2.b = t3.id JOIN t4 ON t3.c = t4.id")
	if err != nil {
		t.Fatal(err)
	}
	if er.Result.Len() != wantLen {
		t.Fatalf("SQL chain join: %d rows, want %d", er.Result.Len(), wantLen)
	}

	ex, err := db.Exec("EXPLAIN ANALYZE SELECT t1.id FROM t1 JOIN t2 ON t1.a = t2.id " +
		"JOIN t3 ON t2.b = t3.id JOIN t4 ON t3.c = t4.id")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipelined multi-join", "forecast", "decision join order:", "decision join stage:"} {
		if !strings.Contains(ex.Plan, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, ex.Plan)
		}
	}

	dbh, want := openHierarchy(t)
	al, err := dbh.Exec("SELECT e.id, g.id FROM staff AS e JOIN staff m ON e.boss = m.id " +
		"JOIN staff g ON m.boss = g.id")
	if err != nil {
		t.Fatal(err)
	}
	if al.Result.Len() != want {
		t.Fatalf("SQL self-join: %d rows, want %d", al.Result.Len(), want)
	}
}

// TestJoinOrderKnob: the leftdeep strategy pins the as-written order,
// the forced strategy demands an explicit order, and the database-wide
// default applies when the query does not override it.
func TestJoinOrderKnob(t *testing.T) {
	db := openStar4(t, 500)
	res, err := starQuery(db).JoinOrder(JoinOrderLeftDeep).Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan()
	if !strings.Contains(p, "(leftdeep)") {
		t.Fatalf("leftdeep strategy not reported:\n%s", p)
	}
	if !strings.Contains(p, "fact ⋈ dima ⋈ dimb ⋈ dimc") {
		t.Fatalf("leftdeep did not keep the as-written order:\n%s", p)
	}
	if _, err := starQuery(db).JoinOrder(JoinOrderForced).Run(); err == nil ||
		!strings.Contains(err.Error(), "ForceJoinOrder") {
		t.Fatalf("forced without an order: %v", err)
	}
	for _, bad := range [][]string{
		{"fact", "dima"},                 // wrong count
		{"fact", "dima", "dimb", "nope"}, // unknown name
		{"fact", "dima", "dima", "dimc"}, // duplicate
	} {
		if _, err := starQuery(db).ForceJoinOrder(bad...).Run(); err == nil {
			t.Fatalf("ForceJoinOrder(%v) should fail", bad)
		}
	}

	dbl, err := Open(Options{JoinOrder: JoinOrderLeftDeep})
	if err != nil {
		t.Fatal(err)
	}
	seedStarInto(t, dbl, 500)
	res2, err := starQuery(dbl).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Plan(), "(leftdeep)") {
		t.Fatalf("Options.JoinOrder default ignored:\n%s", res2.Plan())
	}
}

// TestMultiJoinExplainPlanned: EXPLAIN (no execution) already reports
// the chosen order and the per-stage forecasts.
func TestMultiJoinExplainPlanned(t *testing.T) {
	db := openStar4(t, 500)
	txt, err := starQuery(db).Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"join order:", "pipelined hash", "forecast"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Explain missing %q:\n%s", want, txt)
		}
	}
}

// TestMultiJoinLimit: LIMIT stops the pipeline early.
func TestMultiJoinLimit(t *testing.T) {
	db, wantLen := openChain4(t)
	if wantLen < 3 {
		t.Fatalf("fixture too small: %d rows", wantLen)
	}
	res, err := chainQuery(db).Limit(3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("LIMIT 3: %d rows", res.Len())
	}
}

// TestMultiJoinMixedGraph5: a five-relation tree (chain hanging off a
// star) — permutation equivalence over every executable order.
func TestMultiJoinMixedGraph5(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, cols ...string) *Table {
		fields := []Field{{Name: "id", Type: TypeInt}}
		for _, c := range cols {
			fields = append(fields, Field{Name: c, Type: TypeInt})
		}
		tb, err := db.CreateTable(name, fields, "id", TTree)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	r1 := mk("r1", "x", "w")
	r2 := mk("r2", "y")
	r3 := mk("r3")
	r4 := mk("r4", "z")
	r5 := mk("r5")
	type row1 struct{ id, x, w int64 }
	type row2 struct{ id, y int64 }
	type row4 struct{ id, z int64 }
	var ones []row1
	var twos []row2
	var fours []row4
	for i := int64(0); i < 8; i++ {
		r := row2{id: i, y: i % 5} // r3 has ids 0..3: y=4 dangles
		if _, err := r2.Insert(Int(r.id), Int(r.y)); err != nil {
			t.Fatal(err)
		}
		twos = append(twos, r)
	}
	for i := int64(0); i < 4; i++ {
		if _, err := r3.Insert(Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 6; i++ {
		r := row4{id: i, z: i % 4} // r5 has ids 0..2: z=3 dangles
		if _, err := r4.Insert(Int(r.id), Int(r.z)); err != nil {
			t.Fatal(err)
		}
		fours = append(fours, r)
	}
	for i := int64(0); i < 3; i++ {
		if _, err := r5.Insert(Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 12; i++ {
		r := row1{id: i, x: i % 9, w: i % 7} // x>=8 and w>=6 dangle
		if _, err := r1.Insert(Int(r.id), Int(r.x), Int(r.w)); err != nil {
			t.Fatal(err)
		}
		ones = append(ones, r)
	}
	want := 0
	for _, a := range ones {
		if a.x >= int64(len(twos)) || a.w >= int64(len(fours)) {
			continue
		}
		if twos[a.x].y < 4 && fours[a.w].z < 3 {
			want++
		}
	}
	build := func() *Query {
		return db.Query("r1").
			Join("r2", "x", "id").
			Join("r3", "r2.y", "id").
			Join("r4", "r1.w", "id").
			Join("r5", "r4.z", "id")
	}
	auto, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	if auto.Len() != want {
		t.Fatalf("auto order: %d rows, brute force says %d", auto.Len(), want)
	}
	wantSet := multiset(t, auto)
	valid := checkAllOrders(t, []string{"r1", "r2", "r3", "r4", "r5"}, wantSet, build)
	if valid == 0 || valid == len(permutations(5)) {
		t.Fatalf("implausible executable-order count %d", valid)
	}
}
