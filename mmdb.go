// Package mmdb is a main-memory relational database engine reproducing
// the MM-DBMS architecture of Lehman & Carey, "Query Processing in Main
// Memory Database Management Systems" (SIGMOD 1986).
//
// Relations live entirely in memory, broken into partitions (the unit of
// recovery and locking). Tuples are referred to by stable pointers;
// indices hold tuple pointers rather than key values; foreign keys may be
// declared as tuple-pointer fields, enabling precomputed joins; query
// results are temporary lists of tuple pointers plus a result descriptor —
// data is copied only when a result is finally materialized.
//
// The query layer implements the paper's operator repertoire — selection
// by hash lookup, tree lookup, range scan, or sequential scan; Nested
// Loops, Hash, Tree, Sort Merge, Tree Merge, and precomputed joins;
// duplicate elimination by hashing or sort-scan — and picks among them
// with the simple preference ordering the paper's conclusions lay out.
//
// Durability follows Figure 2: a stable log buffer written before every
// update, an active log device folding committed changes into a
// change-accumulation log, a disk copy of the database maintained lazily,
// and two-phase restart (working set first, background reload after).
package mmdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/lock"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/recovery"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/txn"
)

// IndexKind selects one of the eight studied index structures.
type IndexKind = index.Kind

// The available index structures. TTree and ModLinearHash are the
// MM-DBMS's two general-purpose dynamic structures (§2.2); the others are
// provided for completeness and benchmarking.
const (
	Array         = index.KindArray
	AVLTree       = index.KindAVL
	BTree         = index.KindBTree
	TTree         = index.KindTTree
	ChainedHash   = index.KindChainedHash
	Extendible    = index.KindExtendible
	LinearHash    = index.KindLinearHash
	ModLinearHash = index.KindModLinearHash
)

// Options configures a Database.
type Options struct {
	// Dir is the disk-copy directory. Empty disables durability: no log,
	// no recovery, maximum speed.
	Dir string
	// DeviceInterval is the active log device's propagation period; zero
	// keeps the device off until StartDevice is called.
	DeviceInterval time.Duration
	// Partition sizing; zero values use the defaults ("one or two disk
	// tracks", §2.1).
	SlotsPerPartition int
	HeapPerPartition  int
	// DisableMetrics turns the engine metrics registry off. Disabled,
	// every instrumentation point degenerates to a nil check — no atomics,
	// no allocations (see BenchmarkObsOverhead) — the moral equivalent of
	// the paper compiling its §3.1 counters out for the timed runs.
	DisableMetrics bool
	// Parallelism is the default degree of parallelism for query
	// operators with a partition-parallel implementation (sequential
	// scans, hash join, sort-merge join, DISTINCT). 0 means GOMAXPROCS; 1
	// pins every query to the paper's exact serial algorithms. The
	// planner additionally caps the degree so each worker gets at least
	// plan.MinRowsPerWorker rows, so small tables always run serial.
	// Query.Parallel overrides it per query.
	Parallelism int
	// BatchSize is the tuple-pointer block size batch-at-a-time operators
	// move between stages. 0 means plan.DefaultBatchSize (256). The
	// planner caps it per query at the input cardinality
	// (plan.ChooseBatchSize) and the resolved size appears in EXPLAIN
	// ANALYZE. Pooled blocks are physically plan.DefaultBatchSize;
	// smaller settings simply stop filling blocks early.
	BatchSize int
	// JoinMethod selects how hash-based joins (and radix-eligible
	// DISTINCTs) execute: JoinAuto (default) lets the cost-based
	// chooser upgrade to the cache-conscious radix paths above the
	// crossover, JoinChained pins the paper-faithful chained-bucket
	// algorithms, JoinRadix forces radix whenever legal.
	// Query.JoinMethod overrides it per query.
	JoinMethod JoinStrategy
	// JoinOrder selects how queries over three or more relations order
	// their joins: JoinOrderAuto (default) runs the cost-forecasted
	// enumerator (exact dynamic programming up to plan.DPMaxRels
	// relations, greedy min-cost-edge beyond), JoinOrderLeftDeep
	// executes the joins in the order the query wrote them, and
	// JoinOrderForced requires Query.ForceJoinOrder on each query.
	// Query.JoinOrder overrides it per query.
	JoinOrder JoinOrderStrategy
	// Radix tunes the radix execution paths: target per-partition cache
	// footprint, per-pass fan-out caps, and the build-size crossover
	// below which the paper's original algorithms always run. The zero
	// value uses the plan package defaults.
	Radix RadixConfig
	// SortMethod selects the sort substrate for the sort-based operators
	// (Sort Merge join array builds, MPSM run formation, sort-scan
	// DISTINCT): SortAuto (default) lets the cost-based chooser
	// (plan.ChooseSortMethod) upgrade to the normalized-key radix sort
	// above the crossover, SortQuicksort pins the paper-faithful §3.1
	// comparator quicksort, SortRadix forces the radix kernel.
	// Query.SortMethod overrides it per query.
	SortMethod SortStrategy
	// Sort tunes the sort-method crossover: the input cardinality below
	// which the comparator quicksort always runs, and the assumed
	// decisive-prefix width. The zero value uses the plan package
	// defaults (paper-scale inputs always stay on the §3.1 quicksort).
	Sort SortConfig
	// Agg tunes the grouped-aggregation crossover: the input cardinality
	// below which one flat open-addressing table runs, and the radix
	// sizing (cache budget, per-group footprint, fan-out caps) used above
	// it. The zero value uses the plan package defaults.
	Agg AggConfig
	// TopK tunes the ORDER BY heap-vs-sort crossover: the rows/k ratio a
	// bounded heap needs to win, and the cap on the heap size. The zero
	// value uses the plan package defaults.
	TopK TopKConfig
	// SlowQueryThreshold enables the slow-query log: any query whose wall
	// time reaches the threshold is captured — text, wall time, rows, and
	// the full execution trace with the plan-vs-actual decision audit —
	// into a bounded in-memory ring readable via Database.SlowQueries and
	// the /debug/slow handler. Zero keeps the log off (and keeps Run free
	// of trace-building overhead).
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the slow-query ring; 0 means
	// obs.DefaultSlowLogSize entries. Oldest entries are overwritten.
	SlowQueryLogSize int
	// PoolWorkers selects the morsel scheduler this database's parallel
	// operators run on. 0 (the default) shares the process-wide
	// work-stealing pool (sched.Shared, GOMAXPROCS workers) with every
	// other database in the process — concurrent queries interleave at
	// morsel granularity instead of oversubscribing the machine with
	// per-query goroutine fleets. A positive value gives this database a
	// dedicated pool of that many workers (stopped by Close).
	// PoolDisabled restores the pre-scheduler behavior: per-query worker
	// goroutines, with the effective degree clamped by the number of
	// concurrently active parallel queries so the process never runs more
	// workers than cores.
	PoolWorkers int
	// DisableSnapshots turns off epoch-based snapshot scans. By default a
	// read-only query whose access path is a parallel sequential scan
	// reads a copy-on-write snapshot of the relation published at the
	// last commit, taking no locks at all — writers never wait for
	// analytical readers and vice versa. Disabled, every query goes back
	// to S-locking the relations it reads. Snapshot results are immutable
	// copies: updating tuples obtained from a snapshot scan fails
	// validation, so set this if you update through large-scan results.
	DisableSnapshots bool
	// DisableDegreeClamp turns off the active-query degree clamp in
	// PoolDisabled mode, restoring the original per-query behavior where
	// every query resolves its degree independently — N concurrent
	// queries launch N×degree goroutines. It exists so the concurrency
	// experiment can measure the unclamped baseline the scheduler
	// replaced; production configurations should never set it. With the
	// pool enabled it has no effect (the pool bounds workers itself).
	DisableDegreeClamp bool
	// MemoryBudget, in bytes, caps the engine-wide operator scratch
	// (radix join build tables, aggregation tables) through the
	// internal/mem grant manager. Every query opens a reservation with a
	// fair share of the budget, every budgeted operator grants its
	// tables before building them, and the radix join degrades
	// gracefully instead of thrashing when a grant is refused: it
	// reverses build/probe roles when the forecast build side turns out
	// larger after partitioning, recursively re-splits partitions whose
	// table would overflow the grant, and only overcommits (recorded in
	// mmdb_mem_forced_total) for partitions that cannot shrink — e.g.
	// all-equal join keys. The radix plan itself is also clamped so the
	// scatter's staging fits the budget (plan.BudgetedRadixBits). 0, the
	// default, disables budgeting entirely: the pre-budget execution
	// paths run byte-identical.
	MemoryBudget int64
	// DisableSkewDefense turns off the dynamic-hybrid degradations
	// (role reversal and recursive repartitioning) while keeping the
	// grant accounting and budget-clamped planning of MemoryBudget:
	// oversized tables are forced through at full size. It exists so the
	// skew bench can measure the defenses against the thrash they
	// prevent; production configurations should never set it.
	DisableSkewDefense bool
}

// PoolDisabled, given to Options.PoolWorkers, turns the shared morsel
// scheduler off for this database: parallel operators spawn per-query
// worker goroutines (the pre-scheduler execution mode), clamped by the
// count of concurrently active parallel queries.
const PoolDisabled = -1

// JoinStrategy selects between the paper-faithful chained-bucket hash
// join and the cache-conscious radix hash join for equijoins that have
// to build their own hash table (an existing hash index is always
// probed directly regardless).
type JoinStrategy int

// Join strategies for Options.JoinMethod / Query.JoinMethod.
const (
	// JoinAuto applies the cost-based crossover: radix when the build
	// side is large enough that cache misses dominate
	// (plan.ChooseRadixBits), the §3.3 chained-bucket join otherwise —
	// so the paper-scale reproductions always run the original
	// algorithms.
	JoinAuto JoinStrategy = iota
	// JoinChained always runs the paper-faithful chained-bucket hash
	// join (and the serial/partitioned §3.4 DISTINCT).
	JoinChained
	// JoinRadix forces the radix paths whenever legal (equijoin
	// without an early-exit limit), sizing a minimal plan even for
	// builds below the crossover.
	JoinRadix
)

// JoinOrderStrategy selects how the multi-join planner orders the
// joins of a query over three or more relations. Whatever the order,
// the result multiset is identical — only the intermediate-result
// sizes (and so the run time) differ.
type JoinOrderStrategy int

// Join-order strategies for Options.JoinOrder / Query.JoinOrder.
const (
	// JoinOrderAuto runs the cost-forecasted enumerator: exact dynamic
	// programming over connected subgraphs up to plan.DPMaxRels
	// relations, greedy min-cost-edge expansion beyond.
	JoinOrderAuto JoinOrderStrategy = iota
	// JoinOrderLeftDeep executes the joins in the order the query wrote
	// them (the classic as-written left-deep pipeline), skipping the
	// enumerator entirely.
	JoinOrderLeftDeep
	// JoinOrderForced executes the order given to Query.ForceJoinOrder;
	// a query without one fails.
	JoinOrderForced
)

// RadixConfig tunes the radix execution paths; see plan.RadixConfig.
type RadixConfig = plan.RadixConfig

// SortStrategy selects between the paper-faithful comparator quicksort
// and the normalized-key radix sort (internal/sortkey) for operators
// that sort: the Sort Merge join's array builds, the MPSM parallel
// join's run formation, and sort-scan duplicate elimination. Both
// substrates produce the same key order; only the work to get there
// differs.
type SortStrategy int

// Sort strategies for Options.SortMethod / Query.SortMethod.
const (
	// SortAuto applies the cost-based crossover: the radix kernel when
	// the input is large enough that comparator indirection dominates
	// (plan.ChooseSortMethod), the §3.1 quicksort otherwise — so the
	// paper-scale reproductions always run the original algorithm.
	SortAuto SortStrategy = iota
	// SortQuicksort always runs the paper-faithful comparator quicksort
	// with the insertion-sort cutoff.
	SortQuicksort
	// SortRadix forces the normalized-key radix sort even below the
	// crossover.
	SortRadix
)

// SortConfig tunes the sort-method crossover; see plan.SortConfig.
type SortConfig = plan.SortConfig

// AggConfig tunes the grouped-aggregation crossover; see plan.AggConfig.
type AggConfig = plan.AggConfig

// TopKConfig tunes the ORDER BY heap-vs-sort crossover; see
// plan.TopKConfig.
type TopKConfig = plan.TopKConfig

// Database is a main-memory database: a set of tables, a partition-level
// lock manager, and (optionally) the recovery machinery.
type Database struct {
	mu     sync.RWMutex
	opts   Options
	ids    *storage.IDGen
	tables map[string]*Table
	locks  *lock.Manager
	log    *recovery.Manager
	txns   *txn.Manager
	device *recovery.Device
	obs    *obs.Registry  // nil when Options.DisableMetrics
	active *obs.ActiveSet // nil when Options.DisableMetrics
	slow   *obs.SlowLog   // nil unless Options.SlowQueryThreshold > 0
	sched  *sched.Pool    // nil when Options.PoolWorkers == PoolDisabled
	ownPool bool          // sched is dedicated (stop it on Close)
	mem    *mem.Manager   // nil when Options.MemoryBudget == 0
}

// Open creates a database. With Options.Dir set, a previously saved disk
// copy can be loaded with Recover after the schema is declared.
func Open(opts Options) (*Database, error) {
	db := &Database{
		opts:   opts,
		ids:    storage.NewIDGen(),
		tables: make(map[string]*Table),
		locks:  lock.NewManager(),
	}
	if !opts.DisableMetrics {
		db.obs = obs.NewRegistry()
		db.locks.SetObserver(db.obs)
		db.active = obs.NewActiveSet()
	}
	if opts.SlowQueryThreshold > 0 {
		db.slow = obs.NewSlowLog(opts.SlowQueryThreshold, opts.SlowQueryLogSize)
	}
	switch {
	case opts.PoolWorkers > 0:
		db.sched = sched.NewPool(opts.PoolWorkers)
		db.ownPool = true
	case opts.PoolWorkers == 0:
		db.sched = sched.Shared()
	}
	if db.obs != nil && db.sched != nil {
		pool := db.sched
		db.obs.SetSchedSource(func() obs.SchedStats {
			s := pool.SnapshotStats()
			return obs.SchedStats{
				Workers:    s.Workers,
				QueueDepth: s.QueueDepth,
				Busy:       s.Busy,
				Steals:     s.Steals,
				Parks:      s.Parks,
			}
		})
	}
	db.mem = mem.NewManager(opts.MemoryBudget)
	if db.obs != nil && db.mem != nil {
		gm := db.mem
		db.obs.SetMemSource(func() obs.MemStats {
			s := gm.Snapshot()
			return obs.MemStats{
				Total:        s.Total,
				Granted:      s.Granted,
				Waiting:      s.Waiting,
				Forced:       s.Forced,
				Reversals:    s.Reversals,
				Repartitions: s.Repartitions,
			}
		})
	}
	if opts.Dir != "" {
		log, err := recovery.NewManager(opts.Dir)
		if err != nil {
			return nil, err
		}
		db.log = log
		if db.obs != nil {
			log.SetObserver(db.obs)
		}
		if opts.DeviceInterval > 0 {
			db.device = log.StartDevice(opts.DeviceInterval)
		}
	}
	db.txns = txn.NewManager(db.locks, db.log)
	if db.obs != nil {
		db.txns.Obs = db.obs
	}
	return db, nil
}

// Close stops the background log device, propagating any remaining
// committed records to the disk copy, and stops a dedicated morsel
// scheduler pool (the shared process-wide pool is left running).
func (db *Database) Close() error {
	if db.ownPool && db.sched != nil {
		db.sched.Stop()
		db.sched = nil
		db.ownPool = false
	}
	if db.device != nil {
		if err := db.device.Stop(); err != nil {
			return err
		}
		db.device = nil
	}
	if db.log != nil {
		return db.log.PropagateOnce()
	}
	return nil
}

// Checkpoint writes every table's partitions to the disk copy.
func (db *Database) Checkpoint() error {
	if db.log == nil {
		return fmt.Errorf("mmdb: database opened without durability")
	}
	db.mu.RLock()
	rels := make([]*storage.Relation, 0, len(db.tables))
	for _, t := range db.tables {
		rels = append(rels, t.rel)
	}
	db.mu.RUnlock()
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name() < rels[j].Name() })
	return db.log.Checkpoint(rels...)
}

// CreateTable declares a table. Every relation must be reachable through
// an index (§2.1), so a primary index on primaryColumn is created
// immediately; kind must be an order-preserving structure for ordered
// data or a hash structure for unordered data.
func (db *Database) CreateTable(name string, fields []Field, primaryColumn string, kind IndexKind) (*Table, error) {
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("mmdb: table %q exists", name)
	}
	rel, err := storage.NewRelation(name, schema, storage.Config{
		SlotsPerPartition: db.opts.SlotsPerPartition,
		HeapPerPartition:  db.opts.HeapPerPartition,
	}, db.ids)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, rel: rel, indices: make(map[string]*Index)}
	if _, err := t.createIndexLocked("primary", primaryColumn, kind, true); err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a declared table.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables lists table names in sorted order.
func (db *Database) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Recover rebuilds all declared tables from the disk copy and the
// change-accumulation log, then rebuilds their indices. It implements the
// paper's two-phase restart: workingSet partitions load first (pass nil to
// load everything eagerly); the remainder loads before Recover returns —
// use RecoverAsync for true background reload.
func (db *Database) Recover(workingSet []PartitionKey) error {
	r, err := db.beginRestart(workingSet)
	if err != nil {
		return err
	}
	if err := r.LoadRemaining(); err != nil {
		return err
	}
	if err := r.Finish(); err != nil {
		return err
	}
	db.rebuildIndices()
	return nil
}

// PartitionKey names one partition for working-set recovery.
type PartitionKey = recovery.PartKey

// RecoverAsync loads the working set synchronously, then completes the
// reload in the background; the returned channel yields the final error.
// The database may serve transactions against working-set partitions while
// the background load runs, at the caller's discretion (tuple-pointer
// fields resolve only after the full load).
func (db *Database) RecoverAsync(workingSet []PartitionKey) (<-chan error, error) {
	r, err := db.beginRestart(workingSet)
	if err != nil {
		return nil, err
	}
	out := make(chan error, 1)
	go func() {
		err := <-r.LoadRemainingAsync()
		if err == nil {
			db.rebuildIndices()
		}
		out <- err
	}()
	return out, nil
}

func (db *Database) beginRestart(workingSet []PartitionKey) (*recovery.Restart, error) {
	if db.log == nil {
		return nil, fmt.Errorf("mmdb: database opened without durability")
	}
	db.mu.RLock()
	rels := make([]*storage.Relation, 0, len(db.tables))
	for _, t := range db.tables {
		rels = append(rels, t.rel)
	}
	db.mu.RUnlock()
	r := db.log.NewRestart(rels...)
	if err := r.LoadWorkingSet(workingSet); err != nil {
		return nil, err
	}
	return r, nil
}

func (db *Database) rebuildIndices() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		t.rebuildIndices()
	}
}

// Begin starts a transaction: deferred updates under partition-level
// two-phase locking (§2.4).
func (db *Database) Begin() *Txn {
	return &Txn{db: db, inner: db.txns.Begin()}
}
