package mmdb

import (
	"strings"
	"testing"

	"repro/internal/meter"
	"repro/internal/plan"
)

// analyzeTrace runs q.Analyze and returns the trace, failing the test on
// error or a missing tree.
func analyzeTrace(t *testing.T, q *Query) (*Result, *QueryTrace) {
	t.Helper()
	res, tr, err := q.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Root == nil || len(tr.Root.Children) == 0 {
		t.Fatalf("Analyze returned no trace: %+v", tr)
	}
	return res, tr
}

// joinNode finds the join operator in a trace, failing if absent.
func joinNode(t *testing.T, tr *QueryTrace) *TraceNode {
	t.Helper()
	for _, n := range tr.Root.Children {
		if n.Op == "join" {
			return n
		}
	}
	t.Fatalf("no join node in trace:\n%s", tr.Format())
	return nil
}

func TestAnalyzeTracePrecomputedJoin(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)

	res, tr := analyzeTrace(t, db.Query("emp").Join("dept", "dept", Self).
		Select("emp.name", "dept.name"))
	if res.Len() != 7 {
		t.Fatalf("rows = %d, want 7", res.Len())
	}
	sel := tr.Root.Children[0]
	if sel.Op != "select" || !strings.Contains(sel.AccessPath, "full scan") {
		t.Fatalf("select node = %+v", sel)
	}
	if sel.RowsIn != 7 || sel.RowsOut != 7 {
		t.Fatalf("select rows = %d/%d, want 7/7", sel.RowsIn, sel.RowsOut)
	}
	jn := joinNode(t, tr)
	if jn.AccessPath != "precomputed join" {
		t.Fatalf("join method = %q, want precomputed join", jn.AccessPath)
	}
	if jn.RowsIn != 7 || jn.RowsOut != 7 {
		t.Fatalf("join rows = %d/%d, want 7/7", jn.RowsIn, jn.RowsOut)
	}
	if tr.Total <= 0 {
		t.Fatal("trace has no total wall time")
	}
	// The engine registry saw the query and its shape.
	s := db.Stats()
	if s.Queries != 1 {
		t.Fatalf("Stats.Queries = %d, want 1", s.Queries)
	}
	if s.QueriesByPlan["full scan→precomputed join"] != 1 {
		t.Fatalf("plan shapes = %+v", s.QueriesByPlan)
	}
	if s.RowsReturned != 7 {
		t.Fatalf("Stats.RowsReturned = %d, want 7", s.RowsReturned)
	}
}

func TestAnalyzeTraceTreeMergeJoin(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)

	// Unfiltered id=id with T Trees on both sides → Tree Merge.
	_, tr := analyzeTrace(t, db.Query("emp").Join("dept", "id", "id"))
	jn := joinNode(t, tr)
	if jn.AccessPath != "Tree Merge join" {
		t.Fatalf("join method = %q, want Tree Merge join\n%s", jn.AccessPath, tr.Format())
	}
	if jn.Ops.NodesVisited == 0 && jn.Ops.Comparisons == 0 {
		t.Fatalf("tree merge recorded no §3.1 work: %+v", jn.Ops)
	}
}

func TestAnalyzeTraceTreeJoin(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)

	// One-row outer against a tree-indexed inner twice its size → the §4
	// Tree Join exception.
	_, tr := analyzeTrace(t, db.Query("emp").
		Where("name", Eq, Str("Vera")).Join("dept", "id", "id"))
	jn := joinNode(t, tr)
	if jn.AccessPath != "Tree Join" {
		t.Fatalf("join method = %q, want Tree Join\n%s", jn.AccessPath, tr.Format())
	}
	if jn.RowsIn != 1 {
		t.Fatalf("join rows in = %d, want 1", jn.RowsIn)
	}
	// The probe of dept's primary T Tree is visible in the registry.
	if got := db.Stats().IndexProbes["T Tree"]; got == 0 {
		t.Fatalf("IndexProbes = %+v, want a T Tree probe", db.Stats().IndexProbes)
	}
}

func TestAnalyzeTraceHashJoin(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	if _, err := dept.CreateIndex("by_id_hash", "id", ModLinearHash); err != nil {
		t.Fatal(err)
	}

	// Filtered outer, existing hash index on the inner column → Hash Join
	// probing the existing structure.
	_, tr := analyzeTrace(t, db.Query("emp").
		Where("age", Gt, Int(30)).Join("dept", "id", "id"))
	jn := joinNode(t, tr)
	if jn.AccessPath != "Hash Join" {
		t.Fatalf("join method = %q, want Hash Join\n%s", jn.AccessPath, tr.Format())
	}
	if jn.Ops.HashCalls == 0 {
		t.Fatalf("hash join recorded no hash calls: %+v", jn.Ops)
	}
	if got := db.Stats().IndexProbes["Mod Linear Hash"]; got == 0 {
		t.Fatalf("IndexProbes = %+v, want Mod Linear Hash probes", db.Stats().IndexProbes)
	}
}

// openMatched builds two tables whose join columns overlap, so every join
// method produces rows: a(id, k) with k cycling 1..4 and b(k, name).
func openMatched(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("b", []Field{
		{Name: "k", Type: TypeInt},
		{Name: "name", Type: TypeString},
	}, "k", TTree)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.CreateTable("a", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "k", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 4; k++ {
		if _, err := b.Insert(Int(k), Str(string(rune('a'+k)))); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(1); id <= 8; id++ {
		if _, err := a.Insert(Int(id), Int(id%4+1)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// forceJoinQuery builds an a⋈b query with the planner's choice
// overridden — sort-merge and nested loops are never preferred by the §4
// ordering in this schema, so the hook is the only way to trace them.
func forceJoinQuery(db *Database, method plan.JoinMethod) *Query {
	q := db.Query("a").Where("id", Gt, Int(0)).Join("b", "k", "k")
	q.forceJoin = &method
	return q
}

func TestAnalyzeTraceSortMergeJoin(t *testing.T) {
	db := openMatched(t)

	res, tr := analyzeTrace(t, forceJoinQuery(db, plan.JoinSortMerge))
	jn := joinNode(t, tr)
	if jn.AccessPath != "Sort Merge join" {
		t.Fatalf("join method = %q, want Sort Merge join", jn.AccessPath)
	}
	if jn.Ops.Comparisons == 0 || jn.Ops.DataMoves == 0 {
		t.Fatalf("sort merge recorded no sort work: %+v", jn.Ops)
	}
	if res.Len() != 8 {
		t.Fatalf("sort merge rows = %d, want 8", res.Len())
	}
}

func TestAnalyzeTraceNestedLoopsJoin(t *testing.T) {
	db := openMatched(t)

	res, tr := analyzeTrace(t, forceJoinQuery(db, plan.JoinNestedLoops))
	jn := joinNode(t, tr)
	if jn.AccessPath != "nested loops join" {
		t.Fatalf("join method = %q, want nested loops join", jn.AccessPath)
	}
	if jn.Ops.Comparisons < int64(jn.RowsIn) {
		t.Fatalf("nested loops compared %d times for %d outer rows", jn.Ops.Comparisons, jn.RowsIn)
	}
	if res.Len() != 8 {
		t.Fatalf("nested loops rows = %d, want 8", res.Len())
	}

	// Same query, same result through the planner's own choice.
	want, _, err := db.Query("a").Where("id", Gt, Int(0)).Join("b", "k", "k").Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != want.Len() {
		t.Fatalf("nested loops rows = %d, planner choice rows = %d", res.Len(), want.Len())
	}
}

func TestAnalyzeDistinctAndProject(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)

	res, tr := analyzeTrace(t, db.Query("emp").Join("dept", "dept", Self).
		Select("dept.name").Distinct())
	if res.Len() != 3 {
		t.Fatalf("distinct depts = %d, want 3", res.Len())
	}
	var ops []string
	for _, n := range tr.Root.Children {
		ops = append(ops, n.Op)
	}
	if got := strings.Join(ops, ","); got != "select,join,project,distinct" {
		t.Fatalf("operator order = %s", got)
	}
	dn := tr.Root.Children[3]
	if dn.RowsIn != 7 || dn.RowsOut != 3 {
		t.Fatalf("distinct rows = %d/%d, want 7/3", dn.RowsIn, dn.RowsOut)
	}
	if dn.Ops.HashCalls == 0 {
		t.Fatalf("distinct recorded no hash calls: %+v", dn.Ops)
	}
	if db.Stats().QueriesByPlan["full scan→precomputed join+distinct"] != 1 {
		t.Fatalf("plan shapes = %+v", db.Stats().QueriesByPlan)
	}
}

// TestSQLExplainAnalyze is the acceptance path: EXPLAIN ANALYZE on a
// two-table indexed join prints an operator tree with per-operator rows,
// wall time, and §3.1 counters, and Stats() reflects the query afterward.
func TestSQLExplainAnalyze(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)
	if _, err := emp.CreateIndex("by_age", "age", TTree); err != nil {
		t.Fatal(err)
	}

	r, err := db.Exec("EXPLAIN ANALYZE SELECT emp.name, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF WHERE age > 30")
	if err != nil {
		t.Fatal(err)
	}
	if r.Result != nil {
		t.Fatal("EXPLAIN ANALYZE should not return a result set")
	}
	for _, want := range []string{
		"executed:",
		"select emp: tree range scan on \"age\"",
		"join emp ⋈ dept: precomputed join",
		"rows in=",
		"wall=",
		"cmp=",
	} {
		if !strings.Contains(r.Plan, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, r.Plan)
		}
	}
	s := db.Stats()
	if s.Queries != 1 {
		t.Fatalf("Stats.Queries = %d, want 1", s.Queries)
	}
	if s.QueryLatency.Count != 1 {
		t.Fatalf("latency histogram count = %d, want 1", s.QueryLatency.Count)
	}
	if s.Ops == (meter.Counters{}) {
		t.Fatal("engine ops rollup is empty after an analyzed query")
	}
}

// TestExplainIsSideEffectFree pins the planning/execution split: Explain
// must take no locks, fetch no tuples, and record no metrics.
func TestExplainIsSideEffectFree(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	depts := seedEmpDept(t, emp, dept)
	if _, err := emp.CreateIndex("by_age", "age", TTree); err != nil {
		t.Fatal(err)
	}

	// A writer holds an exclusive lock on emp; Explain must not block on it.
	tx := db.Begin()
	if err := tx.Insert(emp, Str("Zed"), Int(99), Int(30), Ref(depts["Toy"])); err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()

	planned, err := db.Query("emp").Where("age", Gt, Int(30)).
		Join("dept", "id", "id").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planned, "planned") || !strings.Contains(planned, "nothing executed") {
		t.Fatalf("Explain output not labelled as planned:\n%s", planned)
	}
	if !strings.Contains(planned, "tree range scan") {
		t.Fatalf("Explain missing access path:\n%s", planned)
	}
	if !strings.Contains(planned, "runtime may switch methods") {
		t.Fatalf("Explain should flag the estimated outer cardinality:\n%s", planned)
	}
	if got := db.Stats().Queries; got != 0 {
		t.Fatalf("Explain recorded %d queries, want 0", got)
	}
}

// TestDisabledMetrics covers the zero-cost configuration: Stats() is the
// zero snapshot, but Run and Analyze still work (analyze collects its own
// trace independently of the registry).
func TestDisabledMetrics(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{DisableMetrics: true})
	seedEmpDept(t, emp, dept)

	res, tr, err := db.Query("emp").Join("dept", "dept", Self).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("rows = %d, want 7", res.Len())
	}
	if tr == nil || len(tr.Root.Children) == 0 {
		t.Fatal("Analyze must trace even with metrics disabled")
	}
	if s := db.Stats(); s.Queries != 0 || s.TxnBegins != 0 {
		t.Fatalf("disabled Stats = %+v, want zero", s)
	}
	if db.Metrics() != nil {
		t.Fatal("Metrics() should be nil when disabled")
	}
}

// TestStatsLogMetrics checks that a durable database reports log traffic:
// appends with their word counts on write, flushes on commit.
func TestStatsLogMetrics(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{Dir: t.TempDir()})
	seedEmpDept(t, emp, dept)

	s := db.Stats()
	if s.LogAppends == 0 {
		t.Fatal("durable inserts recorded no log appends")
	}
	if s.LogWords == 0 {
		t.Fatal("log appends recorded no words")
	}
	if s.LogFlushes == 0 {
		t.Fatal("commits recorded no log flushes")
	}
}

// TestStatsReflectEngineActivity checks the registry end to end through
// the public API: transactions, queries, and probes all land.
func TestStatsReflectEngineActivity(t *testing.T) {
	db, emp, dept := openEmpDept(t, Options{})
	seedEmpDept(t, emp, dept)

	before := db.Stats()
	for i := 0; i < 3; i++ {
		if _, err := db.Query("emp").Where("id", Eq, Int(52)).Run(); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	d := db.Stats().Sub(before)
	if d.Queries != 3 {
		t.Fatalf("delta queries = %d, want 3", d.Queries)
	}
	if d.QueriesByPlan["tree lookup"] != 3 {
		t.Fatalf("delta plans = %+v", d.QueriesByPlan)
	}
	if d.TxnBegins != 1 || d.TxnCommits != 1 {
		t.Fatalf("delta txns = begin=%d commit=%d, want 1/1", d.TxnBegins, d.TxnCommits)
	}
	if d.IndexProbes["T Tree"] != 3 {
		t.Fatalf("delta probes = %+v", d.IndexProbes)
	}
}
