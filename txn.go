package mmdb

import (
	"fmt"

	"repro/internal/txn"
)

// Txn is a transaction: deferred updates under partition-level two-phase
// locking (§2.4). Log records reach the stable log buffer before any
// update touches the database; Abort discards them with no undo.
type Txn struct {
	db    *Database
	inner *txn.Txn
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.inner.ID() }

// Insert buffers a row insert. The created tuple pointers are returned by
// Commit in insert order.
func (t *Txn) Insert(table *Table, vals ...Value) error {
	return t.inner.Insert(table.rel, vals)
}

// Update buffers a single-column update.
func (t *Txn) Update(table *Table, tp *Tuple, column string, v Value) error {
	f := table.ColumnIndex(column)
	if f < 0 {
		return fmt.Errorf("mmdb: table %s has no column %q", table.Name(), column)
	}
	return t.inner.Update(table.rel, tp, f, v)
}

// Delete buffers a row delete.
func (t *Txn) Delete(table *Table, tp *Tuple) error {
	return t.inner.Delete(table.rel, tp)
}

// Read returns a tuple's values under a shared lock.
func (t *Txn) Read(tp *Tuple) ([]Value, error) {
	return t.inner.Read(tp)
}

// LockTableShared takes shared locks on all of a table's partitions.
func (t *Txn) LockTableShared(table *Table) error {
	return t.inner.LockRelationShared(table.rel)
}

// Commit applies the buffered updates and returns inserted tuples.
func (t *Txn) Commit() ([]*Tuple, error) {
	return t.inner.Commit()
}

// Abort discards the buffered updates.
func (t *Txn) Abort() { t.inner.Abort() }
