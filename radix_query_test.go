package mmdb

import (
	"strings"
	"testing"
)

// TestRadixJoinMatchesChained: forcing the cache-conscious radix hash
// join must yield exactly the paper-faithful chained-bucket join's
// result multiset, and EXPLAIN ANALYZE must attribute the method and
// its partitioning stats.
func TestRadixJoinMatchesChained(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	mk := func(s JoinStrategy) *Query {
		return db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
			Select("a.id", "b.id").Parallel(4).JoinMethod(s)
	}

	chained, trc, err := mk(JoinChained).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	radix, trr, err := mk(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "radix-vs-chained", multiset(t, chained), multiset(t, radix))

	var cj, rj *TraceNode
	for _, n := range trc.Root.Children {
		if n.Op == "join" {
			cj = n
		}
	}
	for _, n := range trr.Root.Children {
		if n.Op == "join" {
			rj = n
		}
	}
	if cj == nil || cj.AccessPath != "Hash Join" {
		t.Fatalf("chained join node = %+v, want Hash Join", cj)
	}
	if cj.Partitions != 0 {
		t.Fatalf("chained join reports radix partitions: %+v", cj)
	}
	if rj == nil || rj.AccessPath != "Radix Hash Join" {
		t.Fatalf("radix join node = %+v, want Radix Hash Join", rj)
	}
	if rj.RadixPasses < 1 || rj.Partitions < 4 || rj.PartitionSkew <= 0 {
		t.Fatalf("radix join stats missing: passes=%d parts=%d skew=%v",
			rj.RadixPasses, rj.Partitions, rj.PartitionSkew)
	}
	if rj.Ops.RadixPasses == 0 || rj.Ops.Partitions == 0 {
		t.Fatalf("radix join §3.1 counters not folded: %+v", rj.Ops)
	}
	if !strings.Contains(trr.Format(), "radix: passes=") {
		t.Fatalf("formatted trace missing radix line:\n%s", trr.Format())
	}
	if !strings.Contains(radix.Plan(), "Radix Hash Join") {
		t.Fatalf("executed plan missing radix method:\n%s", radix.Plan())
	}
}

// TestRadixDistinctMatchesChained: the forced radix DISTINCT must keep
// exactly the rows the serial §3.4 operator keeps, and the trace must
// attribute the radix path.
func TestRadixDistinctMatchesChained(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	mk := func(s JoinStrategy) *Query {
		return db.Query("a").Select("k").Distinct().Parallel(4).JoinMethod(s)
	}
	chained, err := mk(JoinChained).Run()
	if err != nil {
		t.Fatal(err)
	}
	radix, tr, err := mk(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if radix.Len() != 97 || chained.Len() != 97 {
		t.Fatalf("distinct kept %d/%d rows, want 97", radix.Len(), chained.Len())
	}
	sameMultiset(t, "distinct", multiset(t, chained), multiset(t, radix))
	var dn *TraceNode
	for _, n := range tr.Root.Children {
		if n.Op == "distinct" {
			dn = n
		}
	}
	if dn == nil || dn.AccessPath != "radix-partitioned hash duplicate elimination" {
		t.Fatalf("distinct node = %+v", dn)
	}
	if dn.Partitions < 4 || dn.RadixPasses < 1 {
		t.Fatalf("distinct radix stats missing: %+v", dn)
	}
}

// TestJoinAutoCrossover: under JoinAuto the chooser must keep
// paper-scale builds on the original chained algorithm and upgrade to
// radix only past the configured crossover — here lowered so the same
// 6000-row build flips sides.
func TestJoinAutoCrossover(t *testing.T) {
	const rows = 12000
	below := openBig(t, Options{}, rows) // default crossover: 128Ki rows ≫ build
	_, tr, err := below.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Format(), "Hash Join") || strings.Contains(tr.Format(), "Radix") {
		t.Fatalf("below crossover should run chained Hash Join:\n%s", tr.Format())
	}

	above := openBig(t, Options{Radix: RadixConfig{MinBuildRows: 1}}, rows)
	_, tr2, err := above.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr2.Format(), "Radix Hash Join") {
		t.Fatalf("above crossover should upgrade to radix:\n%s", tr2.Format())
	}
}

// TestJoinMethodDatabaseDefault: Options.JoinMethod reaches every query
// without a per-query call, and the per-query knob overrides it both
// ways.
func TestJoinMethodDatabaseDefault(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{JoinMethod: JoinRadix}, rows)
	q := func() *Query {
		return db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k")
	}
	_, tr, err := q().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Format(), "Radix Hash Join") {
		t.Fatalf("database default JoinRadix ignored:\n%s", tr.Format())
	}
	_, tr2, err := q().JoinMethod(JoinChained).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tr2.Format(), "Radix") {
		t.Fatalf("per-query JoinChained did not override:\n%s", tr2.Format())
	}
}

// TestRadixJoinSerialWorker: JoinRadix at Parallel(1) still runs the
// partitioned algorithm (serially) and still matches the serial join.
func TestRadixJoinSerialWorker(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	mk := func(s JoinStrategy) *Query {
		return db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
			Select("a.id", "b.id").Parallel(1).JoinMethod(s)
	}
	serial, err := mk(JoinChained).Run()
	if err != nil {
		t.Fatal(err)
	}
	radix, tr, err := mk(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "serial-radix", multiset(t, serial), multiset(t, radix))
	if !strings.Contains(tr.Format(), "Radix Hash Join") {
		t.Fatalf("Parallel(1) JoinRadix did not run radix:\n%s", tr.Format())
	}
}
