package mmdb

import (
	"sync"
	"sync/atomic"
	"testing"
)

// dmlDB: flip(id pk, bal int) with n rows at bal = 0.
func dmlDB(t testing.TB, n int) *Database {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("flip", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "bal", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := int64(0); i < int64(n); i++ {
		if err := tx.Insert(tbl, Int(i), Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// execRetry runs one DML statement, retrying lock victims/stale reads —
// the same retry discipline interactive clients use. Returns the rows
// affected by the attempt that committed.
func execRetry(t *testing.T, db *Database, sql string) int {
	t.Helper()
	for attempt := 0; ; attempt++ {
		r, err := db.Exec(sql)
		if err == nil {
			return r.RowsAffected
		}
		if attempt > 200 {
			t.Errorf("%s: giving up after %d attempts: %v", sql, attempt, err)
			return 0
		}
	}
}

// TestConcurrentUpdateAtomicity is the regression test for the UPDATE/
// DELETE read-then-write race: the selection used to run OUTSIDE the
// transaction, so two statements could select the same rows and both
// apply, double-counting transitions. With the read inside the txn, the
// flip accounting must balance exactly: (0→1 transitions) − (1→0
// transitions) == final number of 1s.
func TestConcurrentUpdateAtomicity(t *testing.T) {
	const rows = 30
	db := dmlDB(t, rows)
	var up, down atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					up.Add(int64(execRetry(t, db, `UPDATE flip SET bal = 1 WHERE bal = 0`)))
				} else {
					down.Add(int64(execRetry(t, db, `UPDATE flip SET bal = 0 WHERE bal = 1`)))
				}
			}
		}(w)
	}
	wg.Wait()
	res, err := db.Exec(`SELECT COUNT(*) FROM flip WHERE bal = 1`)
	if err != nil {
		t.Fatal(err)
	}
	ones := res.Result.Row(0)[0].Int()
	if got := up.Load() - down.Load(); got != ones {
		t.Fatalf("transition accounting drifted: %d up - %d down = %d, but %d rows at 1 — a statement updated rows its WHERE no longer matched",
			up.Load(), down.Load(), up.Load()-down.Load(), ones)
	}
	// Row population must be intact.
	res, err = db.Exec(`SELECT COUNT(*) FROM flip`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Row(0)[0].Int() != rows {
		t.Fatalf("row count %d, want %d", res.Result.Row(0)[0].Int(), rows)
	}
}

// TestConcurrentDeleteExactlyOnce: competing DELETEs with the same
// predicate must delete each row exactly once between them — the summed
// RowsAffected equals the initial population.
func TestConcurrentDeleteExactlyOnce(t *testing.T) {
	const rows = 40
	db := dmlDB(t, rows)
	var affected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			affected.Add(int64(execRetry(t, db, `DELETE FROM flip WHERE bal = 0`)))
		}()
	}
	wg.Wait()
	if affected.Load() != rows {
		t.Fatalf("competing DELETEs affected %d rows total, want exactly %d", affected.Load(), rows)
	}
	res, err := db.Exec(`SELECT COUNT(*) FROM flip`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Row(0)[0].Int() != 0 {
		t.Fatalf("%d rows remain", res.Result.Row(0)[0].Int())
	}
}
