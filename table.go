package mmdb

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Table is a declared relation plus its indices. All query access to the
// table goes through an index (§2.1).
type Table struct {
	db      *Database
	rel     *storage.Relation
	indices map[string]*Index
	primary *Index
}

// Name returns the table name.
func (t *Table) Name() string { return t.rel.Name() }

// Cardinality returns the number of live tuples.
func (t *Table) Cardinality() int { return t.rel.Cardinality() }

// Schema returns the column definitions.
func (t *Table) Schema() []Field { return t.rel.Schema().Fields() }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int { return t.rel.Schema().FieldIndex(name) }

// Stats returns the table's sampled statistics — row count plus
// per-column distinct-value estimates. The snapshot refreshes lazily:
// it is reused until enough DML lands to plausibly move it (10% of the
// rows, floored at a few hundred writes). A refresh scans under a
// shared table lock, but never blocks behind a writer: when the lock
// is not immediately grantable, the previous snapshot is returned
// as-is (stale statistics beat a stalled metrics endpoint).
func (t *Table) Stats() (TableStat, error) {
	tx := &Txn{db: t.db, inner: t.db.txns.BeginUntracked()}
	defer tx.Abort()
	if !tx.inner.TryLockRelationShared(t.rel) {
		st, _ := t.rel.CachedStats()
		return TableStat(st), nil
	}
	return TableStat(t.rel.Stats()), nil
}

// Index is a named index over one column of a table.
type Index struct {
	name    string
	column  string
	field   int
	kind    IndexKind
	unique  bool
	ordered tupleindex.Ordered // nil for hash structures
	hashed  tupleindex.Hashed  // nil for ordered structures
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Kind returns the index structure kind.
func (ix *Index) Kind() IndexKind { return ix.kind }

// Column returns the indexed column.
func (ix *Index) Column() string { return ix.column }

// Len returns the number of indexed entries.
func (ix *Index) Len() int {
	if ix.ordered != nil {
		return ix.ordered.Len()
	}
	return ix.hashed.Len()
}

// Stats returns the structure's storage shape.
func (ix *Index) Stats() index.Stats {
	if ix.ordered != nil {
		return ix.ordered.Stats()
	}
	return ix.hashed.Stats()
}

// CreateIndex adds a secondary index on the column and populates it from
// the table's current contents.
func (t *Table) CreateIndex(name, column string, kind IndexKind) (*Index, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.createIndexLocked(name, column, kind, false)
}

// CreateUniqueIndex adds a secondary unique index.
func (t *Table) CreateUniqueIndex(name, column string, kind IndexKind) (*Index, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.createIndexLocked(name, column, kind, true)
}

func (t *Table) createIndexLocked(name, column string, kind IndexKind, unique bool) (*Index, error) {
	if _, dup := t.indices[name]; dup {
		return nil, fmt.Errorf("mmdb: index %q exists on %s", name, t.Name())
	}
	field := t.rel.Schema().FieldIndex(column)
	if field < 0 {
		return nil, fmt.Errorf("mmdb: table %s has no column %q", t.Name(), column)
	}
	ix := &Index{name: name, column: column, field: field, kind: kind, unique: unique}
	if err := ix.build(t.rel); err != nil {
		return nil, err
	}
	if unique && field != tupleindex.SelfField {
		t.registerUniqueChecks(ix)
	}
	t.indices[name] = ix
	if t.primary == nil {
		t.primary = ix
	}
	return ix, nil
}

// registerUniqueChecks enforces the unique index at the storage layer:
// inserts and updates that would duplicate an existing key are rejected
// before any state changes. Null keys are exempt (no value to collide).
func (t *Table) registerUniqueChecks(ix *Index) {
	lookup := func(key storage.Value) (*storage.Tuple, bool) {
		if ix.ordered != nil {
			return ix.ordered.Search(tupleindex.PosFor(key, ix.field))
		}
		return ix.hashed.SearchKey(storage.Hash(key), func(x *storage.Tuple) bool {
			return storage.Equal(tupleindex.KeyOf(x, ix.field), key)
		})
	}
	t.rel.AddInsertCheck(func(vals []storage.Value) error {
		key := vals[ix.field]
		if key.IsNull() {
			return nil
		}
		if _, dup := lookup(key); dup {
			return fmt.Errorf("unique index %q: duplicate key %s", ix.name, key)
		}
		return nil
	})
	t.rel.AddUpdateCheck(func(tp *storage.Tuple, f int, v storage.Value) error {
		if f != ix.field || v.IsNull() {
			return nil
		}
		if existing, dup := lookup(v); dup && existing.Canonical() != tp.Canonical() {
			return fmt.Errorf("unique index %q: duplicate key %s", ix.name, v)
		}
		return nil
	})
}

// build (re)creates the underlying structure and populates it.
func (ix *Index) build(rel *storage.Relation) error {
	o := tupleindex.Options{Field: ix.field, Unique: ix.unique, Capacity: rel.Cardinality()}
	var err error
	if ix.kind.OrderPreserving() {
		ix.ordered, err = tupleindex.NewOrdered(ix.kind, o)
	} else {
		ix.hashed, err = tupleindex.NewHashed(ix.kind, o)
	}
	if err != nil {
		return err
	}
	failed := false
	rel.ScanPhysical(func(tp *storage.Tuple) bool {
		if !ix.insert(tp) {
			failed = true
			return false
		}
		return true
	})
	if failed {
		return fmt.Errorf("mmdb: unique violation building index %q", ix.name)
	}
	rel.Observe(ix.maintainer())
	return nil
}

func (ix *Index) insert(tp *storage.Tuple) bool {
	if ix.ordered != nil {
		return ix.ordered.Insert(tp)
	}
	return ix.hashed.Insert(tp)
}

func (ix *Index) remove(tp *storage.Tuple) bool {
	if ix.ordered != nil {
		return ix.ordered.Delete(tp)
	}
	return ix.hashed.Delete(tp)
}

// maintainer reads the structure through ix on every call, so swapping in
// a fresh structure during recovery rebuild does not strand it.
func (ix *Index) maintainer() storage.Observer {
	return &tupleindex.Maintainer{Field: ix.field, Insert: ix.insert, Remove: ix.remove}
}

// rebuildIndices reconstructs every index from the relation's contents —
// the final step of recovery (reloaded tuples bypass observers).
func (t *Table) rebuildIndices() {
	for _, ix := range t.indices {
		o := tupleindex.Options{Field: ix.field, Unique: ix.unique, Capacity: t.rel.Cardinality()}
		if ix.kind.OrderPreserving() {
			ix.ordered, _ = tupleindex.NewOrdered(ix.kind, o)
		} else {
			ix.hashed, _ = tupleindex.NewHashed(ix.kind, o)
		}
		t.rel.ScanPhysical(func(tp *storage.Tuple) bool {
			ix.insert(tp)
			return true
		})
		// The maintainer registered at creation dispatches through ix, so
		// it now feeds the new structure; re-registering would double-fire.
	}
}

// Indexes lists the table's indices sorted by name.
func (t *Table) Indexes() []*Index {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	out := make([]*Index, 0, len(t.indices))
	for _, ix := range t.indices {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// indexOn finds an index over the column: ordered=true restricts to
// order-preserving structures, false to hash structures.
func (t *Table) indexOn(field int, ordered bool) *Index {
	for _, ix := range t.indices {
		if ix.field != field {
			continue
		}
		if ordered && ix.ordered != nil {
			return ix
		}
		if !ordered && ix.hashed != nil {
			return ix
		}
	}
	return nil
}

// scanSource returns the table's cheapest full-scan source: the paper
// scans relations through an index; any index serves.
func (t *Table) scanSource() exec.Source {
	if t.primary.ordered != nil {
		return exec.OrderedScan{Index: t.primary.ordered}
	}
	return exec.HashedScan{Index: t.primary.hashed}
}

// Insert stores a row in its own transaction.
func (t *Table) Insert(vals ...Value) (*Tuple, error) {
	tx := t.db.Begin()
	if err := tx.Insert(t, vals...); err != nil {
		return nil, err
	}
	ins, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	return ins[0], nil
}

// Update changes one column of a row in its own transaction.
func (t *Table) Update(tp *Tuple, column string, v Value) error {
	tx := t.db.Begin()
	if err := tx.Update(t, tp, column, v); err != nil {
		return err
	}
	_, err := tx.Commit()
	return err
}

// Delete removes a row in its own transaction.
func (t *Table) Delete(tp *Tuple) error {
	tx := t.db.Begin()
	if err := tx.Delete(t, tp); err != nil {
		return err
	}
	_, err := tx.Commit()
	return err
}
