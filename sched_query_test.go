package mmdb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// openSnapTable builds one table big enough for the planner to grant
// parallel workers (rows ≫ plan.MinRowsPerWorker) with an invariant the
// snapshot tests check: sum(k) over all rows is constant because writers
// only ever touch v.
func openSnapTable(t *testing.T, opts Options, rows int) (*Database, *Table, []*Tuple, int64) {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("m", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "k", Type: TypeInt},
		{Name: "v", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	var sumK int64
	tuples := make([]*Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		k := int64(i % 97)
		tp, err := tab.Insert(Int(int64(i)), Int(k), Int(0))
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tp)
		sumK += k
	}
	t.Cleanup(func() { db.Close() })
	return db, tab, tuples, sumK
}

// scanAll runs one parallel full scan and returns (count, sum(k)).
func scanAll(t *testing.T, db *Database) (int, int64) {
	t.Helper()
	res, err := db.Query("m").Select("k").Parallel(4).Run()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := 0; i < res.Len(); i++ {
		sum += res.Row(i)[0].Int()
	}
	return res.Len(), sum
}

// TestSnapshotScanPathAndTrace verifies a repeated read-only seq scan
// moves onto the lock-free snapshot path and that EXPLAIN ANALYZE
// reports it, alongside the scheduler cost line.
func TestSnapshotScanPathAndTrace(t *testing.T) {
	db, _, _, sumK := openSnapTable(t, Options{}, 12000)

	// First execution takes locks and publishes the snapshot.
	if n, s := scanAll(t, db); n != 12000 || s != sumK {
		t.Fatalf("first scan: count=%d sum=%d, want 12000/%d", n, s, sumK)
	}
	_, tr, err := db.Query("m").Select("k").Parallel(4).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Format()
	if !strings.Contains(out, "snapshot scan @ epoch") {
		t.Fatalf("second scan not on the snapshot path:\n%s", out)
	}
	// The query ran through the morsel pool; its admission wait is
	// carried on the trace (steals may legitimately be zero).
	if tr.SchedWait < 0 {
		t.Fatalf("negative sched wait %v", tr.SchedWait)
	}

	// Shape guards: a transaction-scoped or joined query must not use
	// the snapshot.
	_, tr, err = db.Query("m").Where("k", Gt, Int(-1)).Select("k").Parallel(4).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Format(); !strings.Contains(got, "snapshot scan") {
		t.Fatalf("predicated seq scan should also snapshot:\n%s", got)
	}
}

// TestSnapshotScanDoesNotBlockWriter runs parallel snapshot scans beside
// a stream of single-row update transactions and demands zero lock
// waits: readers hold no locks at all, and the writer never queues.
func TestSnapshotScanDoesNotBlockWriter(t *testing.T) {
	db, tab, tuples, sumK := openSnapTable(t, Options{}, 12000)

	// Publish the snapshot (first scan locks; later scans are lock-free).
	scanAll(t, db)

	base := db.Stats().LockWaits

	stop := make(chan struct{})
	var writerErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			if err := tx.Update(tab, tuples[r%len(tuples)], "v", Int(int64(r))); err != nil {
				writerErr.Store(err)
				return
			}
			if _, err := tx.Commit(); err != nil {
				writerErr.Store(err)
				return
			}
			r++
		}
	}()

	for i := 0; i < 30; i++ {
		if n, s := scanAll(t, db); n != 12000 || s != sumK {
			close(stop)
			wg.Wait()
			t.Fatalf("scan %d beside writer: count=%d sum=%d, want 12000/%d", i, n, s, sumK)
		}
	}
	close(stop)
	wg.Wait()
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	if waits := db.Stats().LockWaits - base; waits != 0 {
		t.Fatalf("%d lock waits during snapshot-scan/writer mix, want 0", waits)
	}
}

// TestSnapshotConsistencyHammer is the -race workhorse: several writer
// goroutines churn disjoint row ranges with update and delete+reinsert
// transactions while reader goroutines run parallel snapshot scans.
// Every scan must observe a committed state: exact row count and the
// invariant sum(k) (writers change v, and delete+reinsert pairs carry k
// across atomically).
func TestSnapshotConsistencyHammer(t *testing.T) {
	const rows = 12000
	db, tab, tuples, sumK := openSnapTable(t, Options{}, rows)
	scanAll(t, db) // publish

	const writers = 3
	const readers = 3
	duration := 400 * time.Millisecond
	if testing.Short() {
		duration = 100 * time.Millisecond
	}
	deadline := time.Now().Add(duration)

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Disjoint slice of rows per writer: no dead-tuple conflicts.
			lo, hi := w*rows/writers, (w+1)*rows/writers
			mine := append([]*Tuple(nil), tuples[lo:hi]...)
			r := 0
			for time.Now().Before(deadline) {
				i := r % len(mine)
				tx := db.Begin()
				if r%3 == 2 {
					// Delete + reinsert with the same k: count and
					// sum(k) are invariant across the atomic commit.
					vals, err := tx.Read(mine[i])
					if err != nil {
						errc <- err
						tx.Abort()
						return
					}
					if err := tx.Delete(tab, mine[i]); err != nil {
						errc <- err
						return
					}
					if err := tx.Insert(tab, Int(vals[0].Int()+1_000_000), vals[1], Int(int64(r))); err != nil {
						errc <- err
						return
					}
					ins, err := tx.Commit()
					if err != nil {
						errc <- err
						return
					}
					mine[i] = ins[0]
				} else {
					if err := tx.Update(tab, mine[i], "v", Int(int64(r))); err != nil {
						errc <- err
						return
					}
					if _, err := tx.Commit(); err != nil {
						errc <- err
						return
					}
				}
				r++
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				res, err := db.Query("m").Select("k").Parallel(4).Run()
				if err != nil {
					errc <- err
					return
				}
				var sum int64
				for i := 0; i < res.Len(); i++ {
					sum += res.Row(i)[0].Int()
				}
				if res.Len() != rows || sum != sumK {
					errc <- fmt.Errorf("torn read: count=%d sum=%d, want %d/%d", res.Len(), sum, rows, sumK)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestCancelMidJoinReleasesPoolWorkers cancels a large join mid-flight
// and verifies (a) Run surfaces the context error and (b) the shared
// morsel pool drains back to idle — no worker is left running the dead
// query's morsels.
func TestCancelMidJoinReleasesPoolWorkers(t *testing.T) {
	const rows = 30000
	db := openBig(t, Options{}, rows) // a ⋈ b on k: ~rows²/(2·97) output rows

	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := db.Query("a").Where("id", Gt, Int(-1)).
				Join("b", "k", "k").Select("a.id", "b.id").
				Parallel(4).WithContext(ctx).Run()
			done <- err
		}()
		time.Sleep(time.Duration(2+attempt*3) * time.Millisecond)
		cancel()
		err := <-done
		if err == nil {
			// The query outran the cancel; retry with a longer fuse.
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query returned %v, want context.Canceled", err)
		}
		// The pool must drain: no busy workers, no queued morsels from
		// the dead query (other tests are not running concurrently in
		// this package, so idle means idle).
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := sched.Shared().SnapshotStats()
			if st.Busy == 0 && st.QueueDepth == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("pool did not drain after cancel: %+v", st)
			}
			time.Sleep(time.Millisecond)
		}
	}
	t.Skip("query completed before every cancel attempt; machine too fast for a timing-based cancel")
}

// TestPreCancelledContextRejectsQuery is the deterministic half of the
// cancellation contract: a context that is already dead fails the query
// before any operator runs.
func TestPreCancelledContextRejectsQuery(t *testing.T) {
	db, _, _, _ := openSnapTable(t, Options{}, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.Query("m").Select("k").Parallel(4).WithContext(ctx).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query returned %v, want context.Canceled", err)
	}
}

