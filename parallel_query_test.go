package mmdb

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// openBig builds a pair of tables large enough that plan.ChooseWorkers
// actually grants parallel workers (≥ MinRowsPerWorker rows per worker):
// a(id, k) with ~rows tuples and b(id, k, grp) with rows/2. The join
// column k is deliberately un-indexed on both sides so the planner's
// natural choice is the build-side Hash Join — the method with a parallel
// implementation.
func openBig(t *testing.T, opts Options, rows int) *Database {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.CreateTable("a", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "k", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("b", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "k", Type: TypeInt},
		{Name: "grp", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := a.Insert(Int(int64(i)), Int(int64(i%97))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rows/2; i++ {
		if _, err := b.Insert(Int(int64(i)), Int(int64(i%97)), Int(int64(i%7))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// multiset canonicalizes a result for order-insensitive comparison.
func multiset(t *testing.T, r *Result) map[string]int {
	t.Helper()
	out := map[string]int{}
	for i := 0; i < r.Len(); i++ {
		var sb strings.Builder
		for _, v := range r.Row(i) {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		out[sb.String()]++
	}
	return out
}

func sameMultiset(t *testing.T, what string, a, b map[string]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d distinct rows vs %d", what, len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("%s: row %q count %d vs %d", what, k, v, b[k])
		}
	}
}

// TestParallelQueryMatchesSerial runs the same queries at Parallelism 1
// and N and demands identical result multisets — the end-to-end contract
// of the parallel execution layer.
func TestParallelQueryMatchesSerial(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)

	queries := map[string]func() *Query{
		"seqscan": func() *Query {
			return db.Query("a").Where("k", Gt, Int(50)).Select("id", "k")
		},
		"fullscan": func() *Query {
			return db.Query("a").Select("id")
		},
		"hashjoin": func() *Query {
			return db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").Select("a.id", "b.id")
		},
		"distinct": func() *Query {
			return db.Query("a").Select("k").Distinct()
		},
	}
	for name, mk := range queries {
		t.Run(name, func(t *testing.T) {
			serial, err := mk().Parallel(1).Run()
			if err != nil {
				t.Fatal(err)
			}
			par, err := mk().Parallel(4).Run()
			if err != nil {
				t.Fatal(err)
			}
			if par.Len() != serial.Len() {
				t.Fatalf("parallel %d rows, serial %d", par.Len(), serial.Len())
			}
			sameMultiset(t, name, multiset(t, serial), multiset(t, par))
		})
	}

	// Forced sort-merge join, parallel vs serial.
	mkSM := func(par int) *Query {
		q := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").Select("a.id", "b.id").Parallel(par)
		m := plan.JoinSortMerge
		q.forceJoin = &m
		return q
	}
	serial, err := mkSM(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := mkSM(4).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "sortmerge", multiset(t, serial), multiset(t, par))
}

// TestParallelAnalyzeReportsWorkers: EXPLAIN ANALYZE must show workers=N
// on the operators that actually ran parallel, and the database-level
// Options.Parallelism default must reach them without a per-query call.
func TestParallelAnalyzeReportsWorkers(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{Parallelism: 4}, rows)

	// Sequential scan + hash join + distinct, all parallel.
	res, tr, err := db.Query("a").Where("k", Gt, Int(-1)).
		Join("b", "k", "k").Select("b.grp").Distinct().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("distinct groups = %d, want 7", res.Len())
	}
	var sel, join, distinct *TraceNode
	for _, n := range tr.Root.Children {
		switch n.Op {
		case "select":
			sel = n
		case "join":
			join = n
		case "distinct":
			distinct = n
		}
	}
	if sel == nil || sel.Workers <= 1 {
		t.Fatalf("select node not parallel: %+v", sel)
	}
	if !strings.Contains(sel.AccessPath, "parallel partition scan") {
		t.Fatalf("select access path = %q", sel.AccessPath)
	}
	if join == nil || join.Workers <= 1 {
		t.Fatalf("join node not parallel: %+v", join)
	}
	if join.AccessPath != "Hash Join" {
		t.Fatalf("join method = %q, want Hash Join", join.AccessPath)
	}
	if distinct == nil || distinct.Workers <= 1 {
		t.Fatalf("distinct node not parallel: %+v", distinct)
	}
	if !strings.Contains(tr.Format(), "workers=") {
		t.Fatalf("formatted trace missing workers=N:\n%s", tr.Format())
	}
	// The folded per-worker counters reached the trace.
	if join.Ops.HashCalls == 0 {
		t.Fatalf("parallel join lost its §3.1 counters: %+v", join.Ops)
	}

	// Parallel(1) pins the serial paths: no workers in the trace.
	_, tr1, err := db.Query("a").Where("k", Gt, Int(-1)).
		Join("b", "k", "k").Select("b.grp").Distinct().Parallel(1).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tr1.Format(), "workers=") {
		t.Fatalf("Parallel(1) trace still shows workers:\n%s", tr1.Format())
	}
}

// TestSmallInputsStaySerial: with parallelism enabled, tiny tables must
// still run the paper's exact serial algorithms (ChooseWorkers caps at
// one worker below MinRowsPerWorker rows).
func TestSmallInputsStaySerial(t *testing.T) {
	db := openBig(t, Options{Parallelism: 8}, 100)
	_, tr, err := db.Query("a").Where("k", Gt, Int(-1)).Join("b", "k", "k").Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Root.Children {
		if n.Workers > 1 {
			t.Fatalf("tiny input ran parallel: %s", n.Line())
		}
	}
}
