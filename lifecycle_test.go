package mmdb

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// findDecision returns the first audit record with the given name, or nil.
func findDecision(tr *QueryTrace, name string) *Decision {
	for i := range tr.Decisions {
		if tr.Decisions[i].Name == name {
			return &tr.Decisions[i]
		}
	}
	return nil
}

// TestDecisionAuditInTrace: EXPLAIN ANALYZE on a parallel radix join must
// carry the plan-vs-actual audit — the batch sizing, the worker count,
// the radix bits, and the partition balance — each with an estimate and
// the observed actual.
func TestDecisionAuditInTrace(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	_, tr, err := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
		Select("a.id", "b.id").Parallel(4).JoinMethod(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Decisions) == 0 {
		t.Fatal("trace carries no decisions")
	}
	for _, name := range []string{"batch", "workers", "radix bits", "radix balance"} {
		d := findDecision(tr, name)
		if d == nil {
			t.Fatalf("trace missing %q decision; have %+v", name, tr.Decisions)
		}
		if d.Estimate <= 0 {
			t.Fatalf("%q decision has no estimate: %+v", name, d)
		}
	}
	// The join ran with live progress, so the worker decision observed the
	// real per-worker load and the radix decisions the real partitioning.
	if d := findDecision(tr, "workers"); d.Actual <= 0 {
		t.Fatalf("workers decision never observed an actual: %+v", d)
	}
	if d := findDecision(tr, "radix bits"); d.Actual != float64(rows/2) {
		t.Fatalf("radix bits actual = %g, want the %d build rows", d.Actual, rows/2)
	}
	out := tr.Format()
	for _, want := range []string{"decision batch:", "decision workers:", "decision radix bits:", "estimate=", "actual="} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, out)
		}
	}
}

// TestMispredictCounter: a deliberately mis-estimated query — the batch
// sizing assumes the full table, a selective predicate keeps a sliver —
// must increment mmdb_plan_mispredict_total{decision="batch"}.
func TestMispredictCounter(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	if got := db.Metrics().MispredictCount("batch"); got != 0 {
		t.Fatalf("fresh database has %d mispredicts", got)
	}
	// k is un-indexed: sequential scan over 12000 rows, ~124 survive the
	// filter — a ~97x batch-sizing error, far past the 2x threshold.
	if _, err := db.Query("a").Where("k", Eq, Int(5)).Run(); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().MispredictCount("batch"); got != 1 {
		t.Fatalf("MispredictCount(batch) = %d, want 1", got)
	}
	// An unfiltered scan estimates exactly and must not count.
	if _, err := db.Query("a").Run(); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().MispredictCount("batch"); got != 1 {
		t.Fatalf("exact estimate counted as mispredict: %d", got)
	}
	var b strings.Builder
	db.Metrics().WritePrometheus(&b)
	if !strings.Contains(b.String(), `mmdb_plan_mispredict_total{decision="batch"} 1`) {
		t.Fatalf("Prometheus output missing mispredict counter:\n%s", b.String())
	}
}

// TestParallelCountersSurviveFolding: the radix kernel's §3.1 counters
// (partitioning passes, fan-out, sort scatter passes) are accumulated in
// per-worker private counters and folded through meter.SharedCounters —
// the fold must lose nothing under the parallel radix join, radix
// DISTINCT, and MPSM radix-sort paths.
func TestParallelCountersSurviveFolding(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)

	_, tr, err := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
		Select("a.id", "b.id").Parallel(4).JoinMethod(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var jn *TraceNode
	for _, n := range tr.Root.Children {
		if n.Op == "join" {
			jn = n
		}
	}
	if jn == nil || jn.Ops.RadixPasses == 0 || jn.Ops.Partitions == 0 {
		t.Fatalf("parallel radix join counters lost in fold: %+v", jn)
	}
	if jn.PartitionSkew <= 0 {
		t.Fatalf("parallel radix join reports no partition skew: %+v", jn)
	}

	_, trd, err := db.Query("a").Select("k").Distinct().Parallel(4).JoinMethod(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var dn *TraceNode
	for _, n := range trd.Root.Children {
		if n.Op == "distinct" {
			dn = n
		}
	}
	if dn == nil || dn.Ops.RadixPasses == 0 || dn.Ops.Partitions == 0 {
		t.Fatalf("parallel radix distinct counters lost in fold: %+v", dn)
	}
	if dn.PartitionSkew <= 0 {
		t.Fatalf("parallel radix distinct reports no skew: %+v", dn)
	}

	_, trs, err := forceSortMergeQuery(db, SortRadix, 4).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var sn *TraceNode
	for _, n := range trs.Root.Children {
		if n.Op == "join" {
			sn = n
		}
	}
	if sn == nil || sn.Ops.SortPasses == 0 || sn.Ops.SortRuns == 0 {
		t.Fatalf("MPSM radix-sort counters lost in fold: %+v", sn)
	}
}

// TestActiveQueriesLiveVisibility: while a parallel join runs, it must be
// visible in ActiveQueries with its text and a rows-processed gauge that
// only ever grows.
func TestActiveQueriesLiveVisibility(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	if got := db.ActiveQueries(); len(got) != 0 {
		t.Fatalf("idle database lists %d active queries", len(got))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
				Select("a.id", "b.id").Parallel(4).JoinMethod(JoinRadix).Run(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	lastRows := map[uint64]int64{}
	sawProgress := false
	deadline := time.Now().Add(10 * time.Second)
	for !sawProgress && time.Now().Before(deadline) {
		for _, q := range db.ActiveQueries() {
			if !strings.Contains(q.Text, "FROM a JOIN b") {
				t.Errorf("unexpected active query text %q", q.Text)
			}
			if prev, ok := lastRows[q.ID]; ok && q.Rows < prev {
				t.Errorf("q%d progress went backwards: %d -> %d", q.ID, prev, q.Rows)
			}
			lastRows[q.ID] = q.Rows
			if q.Rows > 0 {
				sawProgress = true
			}
		}
	}
	close(stop)
	wg.Wait()
	if !sawProgress {
		t.Fatal("never observed an in-flight query with progress > 0")
	}
	if got := db.ActiveQueries(); len(got) != 0 {
		t.Fatalf("%d queries still registered after completion", len(got))
	}
}

// TestSlowQueryLog: queries crossing Options.SlowQueryThreshold land in
// the slow log with their text, timing, and full trace — including the
// decision audit — even through plain Run; the ring stays bounded,
// newest first.
func TestSlowQueryLog(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLogSize: 2}, rows)
	if got := db.SlowQueries(); len(got) != 0 {
		t.Fatalf("fresh database has %d slow queries", len(got))
	}
	run := func(k int64) {
		t.Helper()
		if _, err := db.Query("a").Where("k", Eq, Int(k)).Run(); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	run(2)
	run(3)
	slow := db.SlowQueries()
	if len(slow) != 2 {
		t.Fatalf("slow log has %d entries, want ring capacity 2", len(slow))
	}
	if !strings.Contains(slow[0].Text, "k = 3") || !strings.Contains(slow[1].Text, "k = 2") {
		t.Fatalf("slow log not newest-first: %q, %q", slow[0].Text, slow[1].Text)
	}
	for _, s := range slow {
		if s.Wall <= 0 || s.Trace == nil {
			t.Fatalf("slow entry missing wall/trace: %+v", s)
		}
		if findDecision(s.Trace, "batch") == nil {
			t.Fatalf("slow entry trace has no decision audit: %+v", s.Trace.Decisions)
		}
		if len(s.Trace.Root.Children) == 0 {
			t.Fatal("slow entry trace has no operator nodes")
		}
	}

	// A threshold nothing crosses captures nothing.
	calm := openBig(t, Options{SlowQueryThreshold: time.Hour}, 100)
	if _, err := calm.Query("a").Run(); err != nil {
		t.Fatal(err)
	}
	if got := calm.SlowQueries(); len(got) != 0 {
		t.Fatalf("sub-threshold query captured: %+v", got)
	}
}

// TestIntrospectionDisabled: DisableMetrics turns the live registry off
// (nil snapshots) and without a threshold there is no slow log; queries
// still run.
func TestIntrospectionDisabled(t *testing.T) {
	db := openBig(t, Options{DisableMetrics: true}, 200)
	if _, err := db.Query("a").Where("k", Eq, Int(1)).Run(); err != nil {
		t.Fatal(err)
	}
	if db.ActiveQueries() != nil {
		t.Fatal("disabled database returned an active-query snapshot")
	}
	if db.SlowQueries() != nil {
		t.Fatal("database without a threshold returned slow queries")
	}
}

// TestIntrospectionUnderParallelQueries hammers ActiveQueries and
// SlowQueries while parallel queries execute on several goroutines — the
// -race guard for the live registry and the slow ring.
func TestIntrospectionUnderParallelQueries(t *testing.T) {
	const rows = 8000
	db := openBig(t, Options{SlowQueryThreshold: time.Nanosecond}, rows)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = db.ActiveQueries()
					_ = db.SlowQueries()
					_ = db.Stats()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5; i++ {
				if _, err := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
					Select("a.id").Parallel(4).JoinMethod(JoinRadix).Run(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := db.ActiveQueries(); len(got) != 0 {
		t.Fatalf("%d queries left registered", len(got))
	}
	if got := db.SlowQueries(); len(got) == 0 {
		t.Fatal("no slow queries captured")
	}
}
