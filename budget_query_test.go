package mmdb

import (
	"strings"
	"testing"
)

// TestMemoryBudgetJoinMatchesUnbudgeted: a radix join squeezed under a
// budget far smaller than its build tables must degrade (clamp its
// fan-out, re-split fat partitions, reverse roles) yet emit exactly the
// multiset the unbudgeted join emits — the correctness contract of the
// whole defense layer.
func TestMemoryBudgetJoinMatchesUnbudgeted(t *testing.T) {
	const rows = 6000
	mk := func(db *Database) *Query {
		return db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
			Select("a.id", "b.id").Parallel(4).JoinMethod(JoinRadix)
	}

	free := openBig(t, Options{}, rows)
	want, err := mk(free).Run()
	if err != nil {
		t.Fatal(err)
	}

	// A small L2 target makes the unclamped plan want 16+ partitions for
	// the 3000-row build, so the 16KiB budget (floor: 4 partitions) must
	// visibly narrow it.
	tight := openBig(t, Options{MemoryBudget: 16 << 10, Radix: RadixConfig{L2Bytes: 4 << 10}}, rows)
	got, tr, err := mk(tight).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "budgeted-vs-free", multiset(t, want), multiset(t, got))

	var jn *TraceNode
	for _, n := range tr.Root.Children {
		if n.Op == "join" {
			jn = n
		}
	}
	if jn == nil {
		t.Fatalf("no join node in trace:\n%s", tr.Format())
	}
	if jn.GrantBytes <= 0 {
		t.Fatalf("budgeted join reports no grant: %+v", jn)
	}
	if !strings.Contains(tr.Format(), "budget: grant=") {
		t.Fatalf("formatted trace missing budget line:\n%s", tr.Format())
	}
	// 16KiB cannot stage the forced fan-out for a 3000-row build, so the
	// planner must have clamped the bits and audited the clamp.
	found := false
	for _, d := range tr.Decisions {
		if d.Name == "radix budget clamp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no budget-clamp audit in decisions: %+v", tr.Decisions)
	}

	// All grants must drain by end of query: the registry gauge is zero.
	var b strings.Builder
	tight.Metrics().WritePrometheus(&b)
	exp := b.String()
	if !strings.Contains(exp, "mmdb_mem_budget_bytes 16384") {
		t.Fatalf("exposition missing budget gauge:\n%s", exp)
	}
	if !strings.Contains(exp, "mmdb_mem_granted 0\n") {
		t.Fatalf("granted bytes did not drain to zero:\n%s", exp)
	}
}

// TestMemoryBudgetSkewDefenseCounters: a skewed build side under a tight
// budget must trigger at least one defense (reversal or re-split), and
// the engine-level counters must record it.
func TestMemoryBudgetSkewDefenseCounters(t *testing.T) {
	db, err := Open(Options{MemoryBudget: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.CreateTable("a", []Field{
		{Name: "id", Type: TypeInt}, {Name: "k", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("b", []Field{
		{Name: "id", Type: TypeInt}, {Name: "k", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	// Outer side tiny, inner build side fat and skewed: half the build
	// rows share one key, so role reversal (build the small side) and
	// recursive re-splitting both have something to bite on.
	for i := 0; i < 200; i++ {
		if _, err := a.Insert(Int(int64(i)), Int(int64(i%11))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8000; i++ {
		k := int64(i % 11)
		if i%2 == 0 {
			k = 3
		}
		if _, err := b.Insert(Int(int64(i)), Int(k)); err != nil {
			t.Fatal(err)
		}
	}
	_, tr, err := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
		Select("a.id", "b.id").Parallel(4).JoinMethod(JoinRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var jn *TraceNode
	for _, n := range tr.Root.Children {
		if n.Op == "join" {
			jn = n
		}
	}
	if jn == nil || jn.Reversed+jn.Resplits == 0 {
		t.Fatalf("tight budget fired no defense: %+v\n%s", jn, tr.Format())
	}
	var sb strings.Builder
	db.Metrics().WritePrometheus(&sb)
	exp := sb.String()
	if strings.Contains(exp, "mmdb_mem_reversals_total 0\n") && strings.Contains(exp, "mmdb_mem_repartitions_total 0\n") {
		t.Fatalf("defense counters not recorded:\n%s", exp)
	}
}

// TestMemoryBudgetDisableSkewDefense: the A/B escape hatch must keep
// results identical while firing zero defenses.
func TestMemoryBudgetDisableSkewDefense(t *testing.T) {
	const rows = 6000
	mk := func(db *Database) *Query {
		return db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
			Select("a.id", "b.id").Parallel(4).JoinMethod(JoinRadix)
	}
	free := openBig(t, Options{}, rows)
	want, err := mk(free).Run()
	if err != nil {
		t.Fatal(err)
	}
	off := openBig(t, Options{MemoryBudget: 16 << 10, DisableSkewDefense: true}, rows)
	got, tr, err := mk(off).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "nodefense-vs-free", multiset(t, want), multiset(t, got))
	for _, n := range tr.Root.Children {
		if n.Op == "join" && (n.Reversed > 0 || n.Resplits > 0) {
			t.Fatalf("DisableSkewDefense still fired defenses: %+v", n)
		}
	}
}

// TestMemoryBudgetGroupBy: grouped aggregation under a budget smaller
// than its worst-case table grant must still produce the unbudgeted
// groups (the grant overcommits as a recorded last resort rather than
// failing), and the group node must carry its grant in the trace.
func TestMemoryBudgetGroupBy(t *testing.T) {
	const rows = 12000
	mk := func(db *Database) *Query {
		return db.Query("b").GroupBy("grp").Agg(AggCount, "*").Agg(AggSum, "id").Parallel(4)
	}
	free := openBig(t, Options{}, rows)
	want, err := mk(free).Run()
	if err != nil {
		t.Fatal(err)
	}
	tight := openBig(t, Options{MemoryBudget: 8 << 10}, rows)
	got, tr, err := mk(tight).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "group-budgeted-vs-free", multiset(t, want), multiset(t, got))
	var gn *TraceNode
	for _, n := range tr.Root.Children {
		if n.Op == "group" {
			gn = n
		}
	}
	if gn == nil || gn.GrantBytes <= 0 {
		t.Fatalf("group node missing grant: %+v\n%s", gn, tr.Format())
	}
	var sb strings.Builder
	tight.Metrics().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "mmdb_mem_granted 0\n") {
		t.Fatalf("group grant did not drain:\n%s", sb.String())
	}
}
