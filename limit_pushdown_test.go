package mmdb

import (
	"strings"
	"testing"
)

// limitDB: emp(id pk, grp int indexed, val int) with 400 rows, plus a
// small grp dimension table for join paths.
func limitDB(t testing.TB) *Database {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := db.CreateTable("emp", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "grp", Type: TypeInt},
		{Name: "val", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emp.CreateIndex("ix_emp_grp", "grp", TTree); err != nil {
		t.Fatal(err)
	}
	grp, err := db.CreateTable("grp", []Field{
		{Name: "gid", Type: TypeInt},
		{Name: "label", Type: TypeString},
	}, "gid", TTree)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for g := int64(0); g < 20; g++ {
		if err := tx.Insert(grp, Int(g), Str("g")); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 400; i++ {
		if err := tx.Insert(emp, Int(i), Int(i%20), Int(i*3%97)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// idSet collects result column 0 into a set.
func idSet(res *Result) map[int64]bool {
	out := map[int64]bool{}
	for i := 0; i < res.Len(); i++ {
		out[res.Row(i)[0].Int()] = true
	}
	return out
}

// TestLimitEquivalence: for every query path, LIMIT k returns exactly
// min(k, full) rows and each returned row belongs to the unlimited
// result — the definition of a correct (unordered) LIMIT pushdown.
func TestLimitEquivalence(t *testing.T) {
	db := limitDB(t)
	paths := []struct {
		name  string
		build func() *Query
	}{
		{"full scan", func() *Query { return db.Query("emp") }},
		{"indexed pred", func() *Query { return db.Query("emp").Where("grp", Eq, Int(3)) }},
		{"residual pred", func() *Query { return db.Query("emp").Where("val", Gt, Int(10)) }},
		{"join", func() *Query { return db.Query("emp").Join("grp", "grp", "gid") }},
		{"join+pred", func() *Query {
			return db.Query("emp").Where("val", Gt, Int(5)).Join("grp", "grp", "gid")
		}},
		{"distinct", func() *Query { return db.Query("emp").Select("grp").Distinct() }},
		{"group", func() *Query { return db.Query("emp").GroupBy("grp").Agg(AggCount, "") }},
	}
	for _, p := range paths {
		full, err := p.build().Run()
		if err != nil {
			t.Fatalf("%s unlimited: %v", p.name, err)
		}
		fullSet := idSet(full)
		for _, k := range []int{0, 1, 3, full.Len(), full.Len() + 10} {
			res, err := p.build().Limit(k).Run()
			if err != nil {
				t.Fatalf("%s limit %d: %v", p.name, k, err)
			}
			want := k
			if want > full.Len() {
				want = full.Len()
			}
			if res.Len() != want {
				t.Fatalf("%s limit %d: %d rows, want %d", p.name, k, res.Len(), want)
			}
			got := idSet(res)
			if len(got) != want {
				t.Fatalf("%s limit %d: duplicate rows in limited output", p.name, k)
			}
			for id := range got {
				if !fullSet[id] {
					t.Fatalf("%s limit %d: row %d not in the unlimited result", p.name, k, id)
				}
			}
		}
	}
}

// TestLimitEarlyExit: a pushed-down LIMIT stops the producing operator —
// the trace's RowsOut equals the limit, not the full cardinality, and
// the plan says where the limit went.
func TestLimitEarlyExit(t *testing.T) {
	db := limitDB(t)

	// Selection path: the scan stops at k rows.
	res, tr, err := db.Query("emp").Limit(5).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("rows=%d, want 5", res.Len())
	}
	sel := tr.Root.Children[0]
	if sel.Op != "select" || sel.RowsOut != 5 {
		t.Fatalf("select node %+v, want RowsOut=5", sel)
	}
	if !strings.Contains(sel.AccessPath, "early exit at LIMIT 5") {
		t.Fatalf("access path %q lacks early-exit marker", sel.AccessPath)
	}
	if !strings.Contains(res.Plan(), "limit: 5 pushed into selection") {
		t.Fatalf("plan:\n%s", res.Plan())
	}

	// Predicate scan path: the residual filter stops at k survivors.
	res, tr, err = db.Query("emp").Where("val", Gt, Int(10)).Limit(4).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 || tr.Root.Children[0].RowsOut != 4 {
		t.Fatalf("rows=%d select out=%d, want 4/4", res.Len(), tr.Root.Children[0].RowsOut)
	}

	// Join path: the join emitter stops at k matches instead of building
	// the full 400-row result.
	res, tr, err = db.Query("emp").Join("grp", "grp", "gid").Limit(7).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("join rows=%d, want 7", res.Len())
	}
	var join *TraceNode
	for _, n := range tr.Root.Children {
		if n.Op == "join" {
			join = n
		}
	}
	if join == nil || join.RowsOut != 7 {
		t.Fatalf("join node %+v, want RowsOut=7\n%s", join, tr.Format())
	}
	if !strings.Contains(res.Plan(), "limit: 7 pushed into join (early exit)") {
		t.Fatalf("plan:\n%s", res.Plan())
	}
}

// TestLimitZeroEveryPath: LIMIT 0 yields zero rows on every path — the
// SQL bug this PR fixes (0 used to mean "no limit" below the truncate).
func TestLimitZeroEveryPath(t *testing.T) {
	db := limitDB(t)
	stmts := []string{
		`SELECT * FROM emp LIMIT 0`,
		`SELECT * FROM emp WHERE grp = 3 LIMIT 0`,
		`SELECT * FROM emp WHERE val > 10 LIMIT 0`,
		`SELECT emp.id FROM emp JOIN grp ON emp.grp = grp.gid LIMIT 0`,
		`SELECT DISTINCT grp FROM emp LIMIT 0`,
		`SELECT grp, COUNT(*) FROM emp GROUP BY grp LIMIT 0`,
		`SELECT COUNT(*) FROM emp LIMIT 0`,
		`SELECT * FROM emp ORDER BY val DESC LIMIT 0`,
	}
	for _, s := range stmts {
		r, err := db.Exec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Result.Len() != 0 || r.RowsAffected != 0 {
			t.Fatalf("%s: %d rows, want 0", s, r.Result.Len())
		}
	}
}

// TestSQLLimitPushdown: the SQL layer threads LIMIT into the plan rather
// than truncating after the fact.
func TestSQLLimitPushdown(t *testing.T) {
	db := limitDB(t)
	r, err := db.Exec(`SELECT * FROM emp LIMIT 6`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Len() != 6 {
		t.Fatalf("rows=%d, want 6", r.Result.Len())
	}
	if !strings.Contains(r.Plan, "limit: 6 pushed into selection") {
		t.Fatalf("plan:\n%s", r.Plan)
	}
}
