package mmdb

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// forceSortMergeQuery builds an a⋈b query with the planner's join
// choice pinned to sort-merge (never preferred by the §4 ordering in
// this schema) so the sort substrate underneath it can be exercised.
func forceSortMergeQuery(db *Database, s SortStrategy, workers int) *Query {
	m := plan.JoinSortMerge
	q := db.Query("a").Where("id", Gt, Int(-1)).Join("b", "k", "k").
		Select("a.id", "b.id").Parallel(workers).SortMethod(s)
	q.forceJoin = &m
	return q
}

// TestSortRadixJoinMatchesQuicksort: forcing the normalized-key radix
// builds under the sort-merge join must yield exactly the comparator
// quicksort's result multiset, and EXPLAIN ANALYZE must attribute the
// substrate and its pass/run counters.
func TestSortRadixJoinMatchesQuicksort(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)

	quick, trq, err := forceSortMergeQuery(db, SortQuicksort, 1).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	radix, trr, err := forceSortMergeQuery(db, SortRadix, 1).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "radix-vs-quicksort join", multiset(t, quick), multiset(t, radix))

	var qj, rj *TraceNode
	for _, n := range trq.Root.Children {
		if n.Op == "join" {
			qj = n
		}
	}
	for _, n := range trr.Root.Children {
		if n.Op == "join" {
			rj = n
		}
	}
	if qj == nil || qj.AccessPath != "Sort Merge join" {
		t.Fatalf("quicksort join node = %+v, want Sort Merge join", qj)
	}
	if qj.Ops.SortPasses != 0 || qj.Ops.SortRuns != 0 {
		t.Fatalf("comparator quicksort recorded radix-kernel work: %+v", qj.Ops)
	}
	if rj == nil || rj.AccessPath != "Sort Merge join" {
		t.Fatalf("radix join node = %+v, want Sort Merge join", rj)
	}
	if rj.Ops.SortPasses == 0 {
		t.Fatalf("radix builds recorded no scatter passes: %+v", rj.Ops)
	}
	if rj.Ops.KeyBytes == 0 {
		t.Fatalf("radix builds recorded no encoded key bytes: %+v", rj.Ops)
	}
	if !strings.Contains(trr.Format(), "sort: passes=") {
		t.Fatalf("formatted trace missing sort line:\n%s", trr.Format())
	}
	if strings.Contains(trq.Format(), "sort: passes=") {
		t.Fatalf("quicksort trace claims radix-kernel work:\n%s", trq.Format())
	}
	if !strings.Contains(radix.Plan(), "radix-key sort") {
		t.Fatalf("executed plan missing sort substrate:\n%s", radix.Plan())
	}

	// The MPSM parallel path must agree with the serial one on both
	// substrates.
	pq, err := forceSortMergeQuery(db, SortQuicksort, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := forceSortMergeQuery(db, SortRadix, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "parallel radix join", multiset(t, quick), multiset(t, pr))
	sameMultiset(t, "parallel quicksort join", multiset(t, quick), multiset(t, pq))
}

// TestSortDistinctSubstrates: an explicit sort strategy switches
// DISTINCT to the §3.4 Sort Scan on that substrate; both substrates and
// the default hash path must keep exactly the same distinct rows.
func TestSortDistinctSubstrates(t *testing.T) {
	const rows = 12000
	db := openBig(t, Options{}, rows)
	mk := func() *Query { return db.Query("a").Select("k").Distinct() }

	hash, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	quick, trq, err := mk().SortMethod(SortQuicksort).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	radix, trr, err := mk().SortMethod(SortRadix).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if hash.Len() != 97 || quick.Len() != 97 || radix.Len() != 97 {
		t.Fatalf("distinct kept %d/%d/%d rows, want 97", hash.Len(), quick.Len(), radix.Len())
	}
	sameMultiset(t, "distinct quick", multiset(t, hash), multiset(t, quick))
	sameMultiset(t, "distinct radix", multiset(t, hash), multiset(t, radix))

	node := func(tr *QueryTrace) *TraceNode {
		for _, n := range tr.Root.Children {
			if n.Op == "distinct" {
				return n
			}
		}
		return nil
	}
	qn, rn := node(trq), node(trr)
	if qn == nil || qn.AccessPath != "sort-scan duplicate elimination (quicksort)" {
		t.Fatalf("quicksort distinct node = %+v", qn)
	}
	if rn == nil || rn.AccessPath != "sort-scan duplicate elimination (radix-key sort)" {
		t.Fatalf("radix distinct node = %+v", rn)
	}
	if rn.Ops.SortPasses == 0 || rn.Ops.KeyBytes == 0 {
		t.Fatalf("radix distinct recorded no kernel work: %+v", rn.Ops)
	}
	if !strings.Contains(trr.Format(), "sort: passes=") {
		t.Fatalf("radix distinct trace missing sort line:\n%s", trr.Format())
	}
}

// TestSortAutoCrossover: under SortAuto the chooser must keep
// paper-scale sorts on the §3.1 comparator quicksort and upgrade to the
// normalized-key kernel only past the configured crossover — here
// lowered so the same 12000-row sort flips sides.
func TestSortAutoCrossover(t *testing.T) {
	const rows = 12000
	below := openBig(t, Options{}, rows) // default crossover: 64Ki rows ≫ sort size
	_, tr, err := forceSortMergeQuery(below, SortAuto, 1).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tr.Format(), "sort: passes=") {
		t.Fatalf("below crossover should run the comparator quicksort:\n%s", tr.Format())
	}

	above := openBig(t, Options{Sort: SortConfig{MinRows: 1}}, rows)
	_, tr2, err := forceSortMergeQuery(above, SortAuto, 1).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr2.Format(), "sort: passes=") {
		t.Fatalf("above crossover should run the radix kernel:\n%s", tr2.Format())
	}
}
