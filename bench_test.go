// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation, each exercising the same code paths as the corresponding
// cmd/mmdb-bench experiment at a reduced scale. The full parameter sweeps
// (paper cardinalities, all node sizes) live in `go run ./cmd/mmdb-bench`;
// these targets give per-operation costs for regression tracking.
package mmdb

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/index/ttree"
	"repro/internal/sortutil"
	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// benchTuples builds an n-tuple single-column relation of unique values.
func benchTuples(n int, seed int64) []*storage.Tuple {
	rng := rand.New(rand.NewSource(seed))
	schema := storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})
	rel, err := storage.NewRelation("b", schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		panic(err)
	}
	tuples := make([]*storage.Tuple, 0, n)
	for _, v := range workload.UniquePool(n, rng, nil) {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(v)})
		if err != nil {
			panic(err)
		}
		tuples = append(tuples, tp)
	}
	return tuples
}

func valuesTuples(values []int64) []*storage.Tuple {
	schema := storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})
	rel, err := storage.NewRelation("b", schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		panic(err)
	}
	tuples := make([]*storage.Tuple, 0, len(values))
	for _, v := range values {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(v)})
		if err != nil {
			panic(err)
		}
		tuples = append(tuples, tp)
	}
	return tuples
}

// BenchmarkGraph1IndexSearch measures a single search in each structure at
// the paper's 30,000 elements (node size 30 / chain target 2).
func BenchmarkGraph1IndexSearch(b *testing.B) {
	const n = 30000
	tuples := benchTuples(n, 1)
	for _, k := range []index.Kind{
		index.KindArray, index.KindAVL, index.KindBTree, index.KindTTree,
		index.KindChainedHash, index.KindExtendible, index.KindLinearHash, index.KindModLinearHash,
	} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			ns := 30
			if !k.OrderPreserving() {
				ns = 2
			}
			o := tupleindex.Options{Field: 0, Unique: true, NodeSize: ns, Capacity: n}
			var searchFn func(storage.Value) bool
			if k == index.KindArray {
				arr := tupleindex.BuildArray(o, tuples)
				searchFn = func(key storage.Value) bool {
					_, ok := arr.Search(tupleindex.PosFor(key, 0))
					return ok
				}
			} else if k.OrderPreserving() {
				ix, _ := tupleindex.NewOrdered(k, o)
				for _, tp := range tuples {
					ix.Insert(tp)
				}
				searchFn = func(key storage.Value) bool {
					_, ok := ix.Search(tupleindex.PosFor(key, 0))
					return ok
				}
			} else {
				ix, _ := tupleindex.NewHashed(k, o)
				for _, tp := range tuples {
					ix.Insert(tp)
				}
				searchFn = func(key storage.Value) bool {
					_, ok := ix.SearchKey(storage.Hash(key), func(t *storage.Tuple) bool {
						return storage.Equal(t.Field(0), key)
					})
					return ok
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !searchFn(tuples[i%n].Field(0)) {
					b.Fatal("lost element")
				}
			}
		})
	}
}

// BenchmarkGraph2QueryMix measures the 60/20/20 mix per operation for the
// two MM-DBMS general-purpose structures plus the B Tree baseline.
func BenchmarkGraph2QueryMix(b *testing.B) {
	const n = 30000
	for _, k := range []index.Kind{index.KindTTree, index.KindBTree, index.KindModLinearHash} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			pool := benchTuples(n+b.N+1, 2)
			o := tupleindex.Options{Field: 0, Unique: true, NodeSize: 30, Capacity: n}
			if !k.OrderPreserving() {
				o.NodeSize = 2
			}
			ins := func(tp *storage.Tuple) {}
			del := func(tp *storage.Tuple) {}
			search := func(key storage.Value) {}
			if k.OrderPreserving() {
				ix, _ := tupleindex.NewOrdered(k, o)
				for _, tp := range pool[:n] {
					ix.Insert(tp)
				}
				ins = func(tp *storage.Tuple) { ix.Insert(tp) }
				del = func(tp *storage.Tuple) { ix.Delete(tp) }
				search = func(key storage.Value) { ix.Search(tupleindex.PosFor(key, 0)) }
			} else {
				ix, _ := tupleindex.NewHashed(k, o)
				for _, tp := range pool[:n] {
					ix.Insert(tp)
				}
				ins = func(tp *storage.Tuple) { ix.Insert(tp) }
				del = func(tp *storage.Tuple) { ix.Delete(tp) }
				search = func(key storage.Value) {
					ix.SearchKey(storage.Hash(key), func(t *storage.Tuple) bool {
						return storage.Equal(t.Field(0), key)
					})
				}
			}
			rng := rand.New(rand.NewSource(3))
			next := n
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch r := rng.Intn(100); {
				case r < 60:
					search(pool[rng.Intn(n)].Field(0))
				case r < 80:
					ins(pool[next])
					next++
				default:
					del(pool[rng.Intn(next)])
				}
			}
		})
	}
}

// BenchmarkStorageCost reports the paper-layout storage factor per
// structure as a custom metric (build cost is what the b.N loop measures).
func BenchmarkStorageCost(b *testing.B) {
	const n = 30000
	tuples := benchTuples(n, 4)
	for _, k := range []index.Kind{index.KindAVL, index.KindBTree, index.KindTTree, index.KindModLinearHash} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var stats index.Stats
			for i := 0; i < b.N; i++ {
				o := tupleindex.Options{Field: 0, Unique: true, NodeSize: 30, Capacity: n}
				if !k.OrderPreserving() {
					o.NodeSize = 2
				}
				if k.OrderPreserving() {
					ix, _ := tupleindex.NewOrdered(k, o)
					for _, tp := range tuples {
						ix.Insert(tp)
					}
					stats = ix.Stats()
				} else {
					ix, _ := tupleindex.NewHashed(k, o)
					for _, tp := range tuples {
						ix.Insert(tp)
					}
					stats = ix.Stats()
				}
			}
			b.ReportMetric(index.PaperModel.Factor(stats), "storage-factor")
		})
	}
}

// BenchmarkGraph3Distribution measures workload generation itself.
func BenchmarkGraph3Distribution(b *testing.B) {
	for _, sigma := range []float64{workload.Skewed, workload.Moderate, workload.NearUniform} {
		sigma := sigma
		b.Run(fmt.Sprintf("sigma=%.1f", sigma), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < b.N; i++ {
				workload.Occurrences(100, 20000, sigma, rng)
			}
		})
	}
}

// joinBench prepares a join pair and runs one method per iteration.
func joinBench(b *testing.B, nOuter, nInner int, dup, sigma, semijoin float64) (exec.OrderedScan, exec.OrderedScan, *ttree.Tree[*storage.Tuple], *ttree.Tree[*storage.Tuple], exec.JoinSpec) {
	b.Helper()
	rng := rand.New(rand.NewSource(6))
	big := workload.Spec{Cardinality: nOuter, DuplicatePct: dup, Sigma: sigma}
	small := workload.Spec{Cardinality: nInner, DuplicatePct: dup, Sigma: sigma}
	var colO, colI workload.Column
	var err error
	if nOuter >= nInner {
		colO, err = workload.Build(big, rng)
		if err == nil {
			colI, err = workload.BuildDerived(small, colO, semijoin, rng)
		}
	} else {
		colI, err = workload.Build(small, rng)
		if err == nil {
			colO, err = workload.BuildDerived(big, colI, semijoin, rng)
		}
	}
	if err != nil {
		b.Fatal(err)
	}
	to, ti := valuesTuples(colO.Values), valuesTuples(colI.Values)
	so := exec.OrderedScan{Index: tupleindex.BuildArray(tupleindex.Options{Field: 0}, to)}
	si := exec.OrderedScan{Index: tupleindex.BuildArray(tupleindex.Options{Field: 0}, ti)}
	tto := tupleindex.NewTTree(tupleindex.Options{Field: 0})
	for _, tp := range to {
		tto.Insert(tp)
	}
	tti := tupleindex.NewTTree(tupleindex.Options{Field: 0})
	for _, tp := range ti {
		tti.Insert(tp)
	}
	var rows int
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Discard: true, RowsOut: &rows}
	return so, si, tto, tti, spec
}

func runJoinMethodSubBenches(b *testing.B, nOuter, nInner int, dup, sigma, semijoin float64) {
	so, si, tto, tti, spec := joinBench(b, nOuter, nInner, dup, sigma, semijoin)
	b.Run("HashJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.HashJoin(so, si, spec)
		}
	})
	b.Run("TreeJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.TreeJoin(so, tti, spec)
		}
	})
	b.Run("SortMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.SortMergeJoin(so, si, spec)
		}
	})
	b.Run("TreeMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.TreeMergeJoin(tto, tti, spec)
		}
	})
}

// BenchmarkGraph4VaryCardinality: Join Test 1 at |R1| = |R2| = 7500.
func BenchmarkGraph4VaryCardinality(b *testing.B) {
	runJoinMethodSubBenches(b, 7500, 7500, 0, workload.NearUniform, 100)
}

// BenchmarkGraph5VaryInner: Join Test 2 at |R2| = 25% of |R1| = 7500.
func BenchmarkGraph5VaryInner(b *testing.B) {
	runJoinMethodSubBenches(b, 7500, 1875, 0, workload.NearUniform, 100)
}

// BenchmarkGraph6VaryOuter: Join Test 3 at |R1| = 25% of |R2| = 7500.
func BenchmarkGraph6VaryOuter(b *testing.B) {
	runJoinMethodSubBenches(b, 1875, 7500, 0, workload.NearUniform, 100)
}

// BenchmarkGraph7DupSkewed: Join Test 4 at 50% duplicates, skewed.
func BenchmarkGraph7DupSkewed(b *testing.B) {
	runJoinMethodSubBenches(b, 5000, 5000, 50, workload.Skewed, 100)
}

// BenchmarkGraph8DupUniform: Join Test 5 at 50% duplicates, uniform.
func BenchmarkGraph8DupUniform(b *testing.B) {
	runJoinMethodSubBenches(b, 5000, 5000, 50, workload.NearUniform, 100)
}

// BenchmarkGraph9Semijoin: Join Test 6 at 25% semijoin selectivity.
func BenchmarkGraph9Semijoin(b *testing.B) {
	runJoinMethodSubBenches(b, 7500, 7500, 50, workload.NearUniform, 25)
}

// BenchmarkGraph10NestedLoops: the baseline at 2000 tuples (quadratic —
// larger sizes drown the suite).
func BenchmarkGraph10NestedLoops(b *testing.B) {
	so, si, _, _, spec := joinBench(b, 2000, 2000, 0, workload.NearUniform, 100)
	for i := 0; i < b.N; i++ {
		exec.NestedLoopsJoin(so, si, spec)
	}
}

func projectionList(n int, dup float64) *storage.TempList {
	rng := rand.New(rand.NewSource(7))
	col, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: dup, Sigma: workload.NearUniform}, rng)
	if err != nil {
		panic(err)
	}
	tuples := valuesTuples(col.Values)
	list := storage.MustTempList(storage.Descriptor{
		Sources: []string{"p"},
		Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
	})
	for _, tp := range tuples {
		list.Append(storage.Row{tp})
	}
	return list
}

// BenchmarkGraph11ProjectCardinality: Project Test 1 at |R| = 30000.
func BenchmarkGraph11ProjectCardinality(b *testing.B) {
	list := projectionList(30000, 0)
	b.Run("SortScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.ProjectSortScan(list, nil)
		}
	})
	b.Run("Hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.ProjectHash(list, nil)
		}
	})
}

// BenchmarkGraph12ProjectDuplicates: Project Test 2 at 75% duplicates.
func BenchmarkGraph12ProjectDuplicates(b *testing.B) {
	list := projectionList(30000, 75)
	b.Run("SortScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.ProjectSortScan(list, nil)
		}
	})
	b.Run("Hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.ProjectHash(list, nil)
		}
	})
}

// BenchmarkAblationSortCutoff sweeps the quicksort cutoff (optimum: 10).
func BenchmarkAblationSortCutoff(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	base := make([]int64, 30000)
	for i := range base {
		base[i] = rng.Int63()
	}
	cmp := func(a, c int64) int {
		switch {
		case a < c:
			return -1
		case a > c:
			return 1
		default:
			return 0
		}
	}
	work := make([]int64, len(base))
	for _, cutoff := range []int{1, 5, 10, 25, 100} {
		cutoff := cutoff
		b.Run(fmt.Sprintf("cutoff=%d", cutoff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortutil.SortCutoff(work, cmp, cutoff, nil)
			}
		})
	}
}

// BenchmarkAblationTTreeGap sweeps the T Tree occupancy gap under an
// insert/delete mix.
func BenchmarkAblationTTreeGap(b *testing.B) {
	for _, gap := range []int{0, 2, 8} {
		gap := gap
		b.Run(fmt.Sprintf("gap=%d", gap), func(b *testing.B) {
			pool := benchTuples(30000+b.N+1, 9)
			cfg := tupleindex.Config(tupleindex.Options{Field: 0, Unique: true, NodeSize: 30})
			tr := ttree.NewWithGap(cfg, gap)
			for _, tp := range pool[:30000] {
				tr.Insert(tp)
			}
			rng := rand.New(rand.NewSource(10))
			next := 30000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rng.Intn(2) == 0 {
					tr.Insert(pool[next])
					next++
				} else {
					tr.Delete(pool[rng.Intn(next)])
				}
			}
		})
	}
}

// BenchmarkAblationJoinBuild compares Tree Merge with and without its
// index build at |R| = 7500.
func BenchmarkAblationJoinBuild(b *testing.B) {
	so, si, tto, tti, spec := joinBench(b, 7500, 7500, 0, workload.NearUniform, 100)
	b.Run("TreeMergeExisting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.TreeMergeJoin(tto, tti, spec)
		}
	})
	b.Run("TreeMergePlusBuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bo := tupleindex.NewTTree(tupleindex.Options{Field: 0})
			so.Scan(func(tp *storage.Tuple) bool { bo.Insert(tp); return true })
			bi := tupleindex.NewTTree(tupleindex.Options{Field: 0})
			si.Scan(func(tp *storage.Tuple) bool { bi.Insert(tp); return true })
			exec.TreeMergeJoin(bo, bi, spec)
		}
	})
	b.Run("HashJoinInclBuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.HashJoin(so, si, spec)
		}
	})
}

// BenchmarkEndToEndQuery measures the public API: the paper's Query 1
// through the planner.
func BenchmarkEndToEndQuery(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	dept, _ := db.CreateTable("dept", []Field{
		{Name: "name", Type: TypeString},
		{Name: "id", Type: TypeInt},
	}, "id", TTree)
	emp, _ := db.CreateTable("emp", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "age", Type: TypeInt},
		{Name: "dept", Type: TypeRef, ForeignKey: "dept"},
	}, "id", TTree)
	if _, err := emp.CreateIndex("by_age", "age", TTree); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var depts []*Tuple
	for i := int64(0); i < 100; i++ {
		tp, _ := dept.Insert(Str(fmt.Sprintf("d%d", i)), Int(i))
		depts = append(depts, tp)
	}
	for i := int64(0); i < 30000; i++ {
		if _, err := emp.Insert(Int(i), Int(rng.Int63n(80)), Ref(depts[rng.Intn(len(depts))])); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("emp").
			Where("age", Gt, Int(65)).
			Join("dept", "dept", Self).
			Select("emp.id", "dept.name").
			Run()
		if err != nil || res.Len() == 0 {
			b.Fatalf("len=%d err=%v", res.Len(), err)
		}
	}
}

// BenchmarkBenchHarnessSmoke keeps the full experiment harness compiling
// and runnable from the test suite at a tiny scale.
func BenchmarkBenchHarnessSmoke(b *testing.B) {
	env := bench.Env{Scale: 0.01, Seed: 1}
	for i := 0; i < b.N; i++ {
		bench.Graph3Distribution(env)
	}
}
