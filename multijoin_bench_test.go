package mmdb

import "testing"

// The benchgate pair for the multi-join planner: the same worst-first
// star query under the naive as-written left-deep order and the DP
// order. Both report the joined row count via b.ReportMetric — the
// workload is deterministic, so benchgate diffs the cardinality
// exactly against the checked-in baseline: a plan change that alters
// what the query returns fails the gate even if it got faster.

func worstFirstStarQuery(db *Database) *Query {
	return db.Query("dima").
		Join("fact", "id", "da").
		Join("dimb", "fact.db_", "id").
		Join("dimc", "fact.dc", "id")
}

func benchMultiJoinOrder(b *testing.B, strat JoinOrderStrategy) {
	db := openStar4(b, 20000) // 20000×(25/500) = 1000 result rows
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := worstFirstStarQuery(db).JoinOrder(strat).Run()
		if err != nil {
			b.Fatal(err)
		}
		rows = res.Len()
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkMultiJoinLeftDeep(b *testing.B) { benchMultiJoinOrder(b, JoinOrderLeftDeep) }

func BenchmarkMultiJoinDP(b *testing.B) { benchMultiJoinOrder(b, JoinOrderAuto) }
