// Quickstart: open a main-memory database, declare tables with indices,
// load rows, and run planned queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mmdb "repro"
)

func main() {
	// An in-memory database without durability: no Dir.
	db, err := mmdb.Open(mmdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Every relation is reachable only through an index, so each table
	// declares a primary index structure: a T Tree for ordered data.
	products, err := db.CreateTable("products", []mmdb.Field{
		{Name: "sku", Type: mmdb.TypeInt},
		{Name: "name", Type: mmdb.TypeString},
		{Name: "price", Type: mmdb.TypeFloat},
	}, "sku", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}
	// A secondary hash index (Modified Linear Hashing — the MM-DBMS's
	// structure for unordered data) for exact-match lookups by name.
	if _, err := products.CreateIndex("by_name", "name", mmdb.ModLinearHash); err != nil {
		log.Fatal(err)
	}

	for _, p := range []struct {
		sku   int64
		name  string
		price float64
	}{
		{1001, "widget", 9.99},
		{1002, "gadget", 24.50},
		{1003, "sprocket", 3.75},
		{1004, "flange", 12.00},
		{1005, "grommet", 0.99},
	} {
		if _, err := products.Insert(mmdb.Int(p.sku), mmdb.Str(p.name), mmdb.Float(p.price)); err != nil {
			log.Fatal(err)
		}
	}

	// Exact match: the planner picks the hash index ("a hash lookup is
	// always faster than a tree lookup").
	res, err := db.Query("products").Where("name", mmdb.Eq, mmdb.Str("gadget")).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", res.Plan())
	for i := 0; i < res.Len(); i++ {
		fmt.Println("  ", res.Row(i))
	}

	// Range: only the order-preserving index can serve it.
	res, err = db.Query("products").
		Where("sku", mmdb.Ge, mmdb.Int(1002)).
		Where("sku", mmdb.Lt, mmdb.Int(1005)).
		Select("sku", "name").
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", res.Plan())
	for i := 0; i < res.Len(); i++ {
		fmt.Println("  ", res.Row(i))
	}

	// Transactions: deferred updates, two-phase partition locks.
	tx := db.Begin()
	if err := tx.Insert(products, mmdb.Int(1006), mmdb.Str("doohickey"), mmdb.Float(5.25)); err != nil {
		log.Fatal(err)
	}
	inserted, err := tx.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed:", inserted[0])

	fmt.Println("products:", products.Cardinality())
}
