// Program editor: relational storage for program information, one of the
// paper's motivating applications — "Horwitz and Teitelbaum have proposed
// using relational storage for program information in language-based
// editors" and "Linton has also proposed the use of a database system as
// the basis for constructing program development environments" (§1).
//
// The editor keeps functions, call sites, and variable references in
// memory-resident relations. Cross-reference queries ("who calls f?",
// "where is x written?") become indexed selections and pointer joins fast
// enough to run on every keystroke.
//
//	go run ./examples/program-editor
package main

import (
	"fmt"
	"log"

	mmdb "repro"
)

func main() {
	db, err := mmdb.Open(mmdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	funcs, err := db.CreateTable("funcs", []mmdb.Field{
		{Name: "name", Type: mmdb.TypeString},
		{Name: "file", Type: mmdb.TypeString},
		{Name: "line", Type: mmdb.TypeInt},
	}, "name", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}

	// Each call site points at its caller and callee function tuples:
	// foreign keys become tuple pointers, so "caller of" traversals are
	// precomputed joins.
	calls, err := db.CreateTable("calls", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "caller", Type: mmdb.TypeRef, ForeignKey: "funcs"},
		{Name: "callee", Type: mmdb.TypeRef, ForeignKey: "funcs"},
		{Name: "line", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}

	refs, err := db.CreateTable("refs", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "variable", Type: mmdb.TypeString},
		{Name: "kind", Type: mmdb.TypeString}, // "read" or "write"
		{Name: "in", Type: mmdb.TypeRef, ForeignKey: "funcs"},
		{Name: "line", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := refs.CreateIndex("by_var", "variable", mmdb.ModLinearHash); err != nil {
		log.Fatal(err)
	}

	// Index a small program.
	fn := map[string]*mmdb.Tuple{}
	for _, f := range []struct {
		name, file string
		line       int64
	}{
		{"main", "main.go", 10},
		{"parse", "parse.go", 5},
		{"eval", "eval.go", 8},
		{"lookup", "eval.go", 40},
		{"report", "main.go", 55},
	} {
		tp, err := funcs.Insert(mmdb.Str(f.name), mmdb.Str(f.file), mmdb.Int(f.line))
		if err != nil {
			log.Fatal(err)
		}
		fn[f.name] = tp
	}
	callID := int64(0)
	for _, c := range []struct {
		caller, callee string
		line           int64
	}{
		{"main", "parse", 14},
		{"main", "eval", 15},
		{"main", "report", 17},
		{"eval", "lookup", 12},
		{"eval", "eval", 20}, // recursion
		{"parse", "lookup", 9},
	} {
		callID++
		if _, err := calls.Insert(mmdb.Int(callID), mmdb.Ref(fn[c.caller]), mmdb.Ref(fn[c.callee]), mmdb.Int(c.line)); err != nil {
			log.Fatal(err)
		}
	}
	refID := int64(0)
	for _, r := range []struct {
		variable, kind, in string
		line               int64
	}{
		{"env", "write", "main", 12},
		{"env", "read", "eval", 9},
		{"env", "read", "lookup", 41},
		{"ast", "write", "parse", 7},
		{"ast", "read", "eval", 10},
	} {
		refID++
		if _, err := refs.Insert(mmdb.Int(refID), mmdb.Str(r.variable), mmdb.Str(r.kind), mmdb.Ref(fn[r.in]), mmdb.Int(r.line)); err != nil {
			log.Fatal(err)
		}
	}

	// "Who calls eval?" — pointer-compare join from the callee tuple.
	fmt.Println("callers of eval:")
	res, err := db.Query("calls").
		Join("funcs", "caller", mmdb.Self).
		Select("funcs.name", "calls.line").
		Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		// Filter callee==eval via the tuple pointers in the result rows.
		if res.Tuples(i)[0].Field(2).Ref() == fn["eval"] {
			fmt.Printf("  %s (line %v)\n", res.Row(i)[0].Str(), res.Row(i)[1])
		}
	}

	// "Where is env referenced?" — hash index on the variable column,
	// then the precomputed join to the containing function.
	fmt.Println("references to env:")
	res, err = db.Query("refs").
		Where("variable", mmdb.Eq, mmdb.Str("env")).
		Join("funcs", "in", mmdb.Self).
		Select("refs.kind", "funcs.name", "funcs.file", "refs.line").
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  plan:", res.Plan())
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		fmt.Printf("  %-5s in %s (%s:%v)\n", row[0].Str(), row[1].Str(), row[2].Str(), row[3])
	}

	// "Which functions are never called?" — distinct callees vs all.
	called := map[string]bool{}
	res, err = db.Query("calls").Join("funcs", "callee", mmdb.Self).Select("funcs.name").Distinct().Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		called[res.Row(i)[0].Str()] = true
	}
	fmt.Println("never called:")
	for name := range fn {
		if !called[name] {
			fmt.Println("  ", name)
		}
	}
}
