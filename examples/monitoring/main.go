// Performance monitoring: "Snodgrass has shown that the relational model
// provides a good basis for the development of performance monitoring
// tools" (§1). Events stream into a memory-resident relation; the T Tree
// primary index on the timestamp makes time-window queries range scans,
// and a tuple-pointer foreign key links each event to its process.
//
// The example then turns the monitoring lens on the engine itself: the
// per-query operator trace (EXPLAIN ANALYZE), the engine-wide metrics
// registry (db.Stats()), and the curl-able Prometheus endpoint
// (db.MetricsHandler()).
//
//	go run ./examples/monitoring
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"

	mmdb "repro"
)

func main() {
	db, err := mmdb.Open(mmdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	procs, err := db.CreateTable("procs", []mmdb.Field{
		{Name: "pid", Type: mmdb.TypeInt},
		{Name: "command", Type: mmdb.TypeString},
	}, "pid", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}
	events, err := db.CreateTable("events", []mmdb.Field{
		{Name: "ts", Type: mmdb.TypeInt}, // microseconds
		{Name: "kind", Type: mmdb.TypeString},
		{Name: "proc", Type: mmdb.TypeRef, ForeignKey: "procs"},
		{Name: "latency", Type: mmdb.TypeInt},
	}, "ts", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := events.CreateIndex("by_kind", "kind", mmdb.ModLinearHash); err != nil {
		log.Fatal(err)
	}

	// Simulated monitoring stream.
	rng := rand.New(rand.NewSource(42))
	var procTuples []*mmdb.Tuple
	for pid, cmd := range map[int64]string{101: "dbserver", 102: "editor", 103: "compiler"} {
		tp, err := procs.Insert(mmdb.Int(pid), mmdb.Str(cmd))
		if err != nil {
			log.Fatal(err)
		}
		procTuples = append(procTuples, tp)
	}
	kinds := []string{"syscall", "pagefault", "lock-wait", "io"}
	ts := int64(0)
	tx := db.Begin()
	for i := 0; i < 5000; i++ {
		ts += rng.Int63n(100) + 1
		if err := tx.Insert(events,
			mmdb.Int(ts),
			mmdb.Str(kinds[rng.Intn(len(kinds))]),
			mmdb.Ref(procTuples[rng.Intn(len(procTuples))]),
			mmdb.Int(rng.Int63n(5000)),
		); err != nil {
			log.Fatal(err)
		}
		if i%500 == 499 { // commit in batches, as a collector would
			if _, err := tx.Commit(); err != nil {
				log.Fatal(err)
			}
			tx = db.Begin()
		}
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("events collected:", events.Cardinality())

	// Time-window query: a range scan on the primary T Tree.
	lo, hi := ts/4, ts/4+5000
	res, err := db.Query("events").
		Where("ts", mmdb.Ge, mmdb.Int(lo)).
		Where("ts", mmdb.Le, mmdb.Int(hi)).
		Join("procs", "proc", mmdb.Self).
		Select("events.ts", "events.kind", "procs.command", "events.latency").
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window [%d, %d]: %d events\n", lo, hi, res.Len())
	fmt.Println("  plan:", res.Plan())

	// Per-kind stats over the window, aggregated by the client from the
	// tuple-pointer result (no data was copied to compute the window).
	type agg struct {
		n     int
		total int64
	}
	perKind := map[string]*agg{}
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		a := perKind[row[1].Str()]
		if a == nil {
			a = &agg{}
			perKind[row[1].Str()] = a
		}
		a.n++
		a.total += row[3].Int()
	}
	for _, k := range kinds {
		if a := perKind[k]; a != nil {
			fmt.Printf("  %-10s n=%-5d mean latency=%dus\n", k, a.n, a.total/int64(a.n))
		}
	}

	// Exact-match on kind uses the hash index.
	res, err = db.Query("events").Where("kind", mmdb.Eq, mmdb.Str("lock-wait")).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lock-wait events: %d (plan: %s)\n", res.Len(), res.Plan())

	// Now monitor the monitor. EXPLAIN ANALYZE executes the query and
	// reports the operator tree: rows in/out, wall time, and the §3.1
	// validity counters (comparisons, moves, hash calls, nodes) per
	// operator.
	r, err := db.Exec("EXPLAIN ANALYZE SELECT events.kind, procs.command FROM events JOIN procs ON events.proc = procs.SELF WHERE latency < 50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN ANALYZE:")
	fmt.Println(indent(r.Plan))

	// The engine-wide registry has been counting everything this program
	// did: queries by plan shape, rows scanned vs returned, index probes
	// per structure, transactions, log traffic.
	fmt.Println("\ndb.Stats():")
	fmt.Println(indent(db.Stats().String()))

	// The same registry is curl-able. db.MetricsHandler() serves
	// Prometheus text format (and JSON with ?format=json); mount it on
	// any mux. Here an httptest server stands in for a real listener:
	//
	//	http.Handle("/metrics", db.MetricsHandler())
	//	curl localhost:8080/metrics
	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\ncurl " + srv.URL + " (first lines):")
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 8 && sc.Scan(); i++ {
		fmt.Println("  " + sc.Text())
	}
	io.Copy(io.Discard, resp.Body)

	// Live introspection rides the same pattern: db.DebugHandler() serves
	// /debug/queries (in-flight queries with phase and progress gauges)
	// and /debug/slow (the slow-query log — enable it with
	// Options.SlowQueryThreshold).
	dbg := httptest.NewServer(db.DebugHandler())
	defer dbg.Close()
	resp2, err := http.Get(dbg.URL + "/debug/queries")
	if err != nil {
		log.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	fmt.Println("\ncurl " + dbg.URL + "/debug/queries:")
	fmt.Println(indent(strings.TrimRight(string(body), "\n")))
}

// indent prefixes every line with two spaces.
func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
