// Employee/Department: the walkthrough of §2.1 and Figure 1 of the paper.
//
// The Employee relation declares Dept_Id as a foreign key, so the MM-DBMS
// substitutes a tuple-pointer field. Query 1 (employees over 65 with their
// department names) runs as a selection followed by a precomputed join —
// no comparisons at all. Query 2 (employees of the Toy or Shoe
// departments) runs in the other direction: select the departments, then
// join by comparing tuple pointers rather than data values.
//
//	go run ./examples/employee
package main

import (
	"fmt"
	"log"

	mmdb "repro"
)

func main() {
	db, err := mmdb.Open(mmdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	dept, err := db.CreateTable("dept", []mmdb.Field{
		{Name: "name", Type: mmdb.TypeString},
		{Name: "id", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dept.CreateIndex("by_name", "name", mmdb.TTree); err != nil {
		log.Fatal(err)
	}

	// Emp.dept is declared as a foreign key into dept: the engine stores a
	// tuple pointer, enabling the precomputed join.
	emp, err := db.CreateTable("emp", []mmdb.Field{
		{Name: "name", Type: mmdb.TypeString},
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "age", Type: mmdb.TypeInt},
		{Name: "dept", Type: mmdb.TypeRef, ForeignKey: "dept"},
	}, "id", mmdb.TTree)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := emp.CreateIndex("by_age", "age", mmdb.TTree); err != nil {
		log.Fatal(err)
	}

	// Figure 1's instance (ages extended so Query 1 has matches).
	depts := map[string]*mmdb.Tuple{}
	for _, d := range []struct {
		name string
		id   int64
	}{{"Toy", 459}, {"Shoe", 409}, {"Linen", 411}, {"Paint", 455}} {
		tp, err := dept.Insert(mmdb.Str(d.name), mmdb.Int(d.id))
		if err != nil {
			log.Fatal(err)
		}
		depts[d.name] = tp
	}
	for _, e := range []struct {
		name    string
		id, age int64
		dept    string
	}{
		{"Dave", 23, 24, "Toy"},
		{"Suzan", 12, 27, "Toy"},
		{"Yaman", 44, 54, "Linen"},
		{"Jane", 43, 47, "Linen"},
		{"Cindy", 22, 22, "Shoe"},
		{"Umar", 51, 68, "Shoe"},
		{"Vera", 52, 71, "Toy"},
	} {
		if _, err := emp.Insert(mmdb.Str(e.name), mmdb.Int(e.id), mmdb.Int(e.age), mmdb.Ref(depts[e.dept])); err != nil {
			log.Fatal(err)
		}
	}

	// Query 1: "Retrieve the Employee name, Employee age, and Department
	// name for all employees over age 65."
	fmt.Println("Query 1 — employees over 65:")
	res, err := db.Query("emp").
		Where("age", mmdb.Gt, mmdb.Int(65)).
		Join("dept", "dept", mmdb.Self).
		Select("emp.name", "emp.age", "dept.name").
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  plan:")
	for _, line := range splitLines(res.Plan()) {
		fmt.Println("   ", line)
	}
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		fmt.Printf("    %-8s age %-3v dept %s\n", row[0].Str(), row[1], row[2].Str())
	}

	// Query 2: "Retrieve the names of all employees who work in the Toy
	// or Shoe Departments." Selection on dept, then a join whose
	// comparisons are tuple pointers, not data.
	fmt.Println("Query 2 — employees in Toy or Shoe:")
	for _, name := range []string{"Toy", "Shoe"} {
		res, err := db.Query("dept").
			Where("name", mmdb.Eq, mmdb.Str(name)).
			Join("emp", mmdb.Self, "dept").
			Select("emp.name").
			Run()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < res.Len(); i++ {
			fmt.Printf("    %-8s (%s)\n", res.Row(i)[0].Str(), name)
		}
	}

	// The result of a join is a temporary list of tuple-pointer pairs: no
	// data was copied. Updating a base tuple is visible through an
	// already-computed result.
	res, err = db.Query("emp").Where("id", mmdb.Eq, mmdb.Int(23)).Run()
	if err != nil || res.Len() != 1 {
		log.Fatal("Dave lookup failed")
	}
	dave := res.Tuples(0)[0]
	if err := emp.Update(dave, "age", mmdb.Int(25)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after birthday, result row reads through the pointer: age=%v\n", res.Row(0)[2])
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
