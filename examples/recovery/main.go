// Recovery: the Figure 2 architecture end to end — stable log buffer,
// active log device with a change-accumulation log, disk copy of the
// database, crash, and two-phase restart (working set first, background
// reload after).
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	mmdb "repro"
)

func buildSchema(db *mmdb.Database) (*mmdb.Table, *mmdb.Table, error) {
	accounts, err := db.CreateTable("accounts", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "owner", Type: mmdb.TypeString},
		{Name: "balance", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		return nil, nil, err
	}
	transfers, err := db.CreateTable("transfers", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "from", Type: mmdb.TypeRef, ForeignKey: "accounts"},
		{Name: "to", Type: mmdb.TypeRef, ForeignKey: "accounts"},
		{Name: "amount", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		return nil, nil, err
	}
	return accounts, transfers, nil
}

func main() {
	dir, err := os.MkdirTemp("", "mmdb-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: normal operation with the log device running.
	db, err := mmdb.Open(mmdb.Options{Dir: dir, DeviceInterval: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	accounts, transfers, err := buildSchema(db)
	if err != nil {
		log.Fatal(err)
	}

	var acct []*mmdb.Tuple
	tx := db.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := tx.Insert(accounts, mmdb.Int(i), mmdb.Str(fmt.Sprintf("owner-%d", i)), mmdb.Int(1000)); err != nil {
			log.Fatal(err)
		}
	}
	if acct, err = tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// A checkpoint writes all partition images to the disk copy.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint written")

	// Post-checkpoint transactions: these live only in the stable log
	// buffer / change-accumulation log until the device propagates them.
	for i := int64(0); i < 50; i++ {
		tx := db.Begin()
		from, to := acct[i], acct[(i+7)%100]
		if err := tx.Insert(transfers, mmdb.Int(i+1), mmdb.Ref(from), mmdb.Ref(to), mmdb.Int(10)); err != nil {
			log.Fatal(err)
		}
		if err := tx.Update(accounts, from, "balance", mmdb.Int(from.Field(2).Int()-10)); err != nil {
			log.Fatal(err)
		}
		if err := tx.Update(accounts, to, "balance", mmdb.Int(to.Field(2).Int()+10)); err != nil {
			log.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// One transaction aborts: its log entries vanish, no undo needed.
	bad := db.Begin()
	if err := bad.Insert(transfers, mmdb.Int(999), mmdb.Ref(acct[0]), mmdb.Ref(acct[1]), mmdb.Int(1000000)); err != nil {
		log.Fatal(err)
	}
	bad.Abort()

	total := int64(0)
	for _, a := range acct {
		total += a.Field(2).Int()
	}
	fmt.Printf("before crash: %d accounts, %d transfers, total balance %d\n",
		accounts.Cardinality(), transfers.Cardinality(), total)
	if err := db.Close(); err != nil { // stop the device; drain the log
		log.Fatal(err)
	}

	// CRASH. All memory gone. Reopen against the same disk copy.
	db2, err := mmdb.Open(mmdb.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	accounts2, transfers2, err := buildSchema(db2)
	if err != nil {
		log.Fatal(err)
	}

	// Two-phase restart: bring the accounts partitions in first (the
	// working set of the transactions queued at the crash), then let the
	// background process reload the rest.
	start := time.Now()
	if err := db2.Recover(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %v\n", time.Since(start))

	total2 := int64(0)
	res, err := db2.Query("accounts").Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		total2 += res.Row(i)[2].Int()
	}
	fmt.Printf("after recovery: %d accounts, %d transfers, total balance %d\n",
		accounts2.Cardinality(), transfers2.Cardinality(), total2)
	if total2 != total {
		log.Fatalf("balance drift: %d != %d", total2, total)
	}
	// The aborted transfer must not exist.
	res, err = db2.Query("transfers").Where("id", mmdb.Eq, mmdb.Int(999)).Run()
	if err != nil {
		log.Fatal(err)
	}
	if res.Len() != 0 {
		log.Fatal("aborted transaction resurrected")
	}
	fmt.Println("aborted transaction absent; tuple-pointer FKs re-swizzled")
}
