// SQL: the engine's SQL dialect end to end — DDL with tuple-pointer
// foreign keys, REF(...) pointer literals in INSERT, planned SELECTs with
// EXPLAIN, UPDATE and DELETE. Every statement runs through the same §4
// preference-order planner as the fluent API.
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"

	mmdb "repro"
)

func main() {
	db, err := mmdb.Open(mmdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	stmts := []string{
		`CREATE TABLE dept (name STRING, id INT, PRIMARY KEY id USING ttree)`,
		`CREATE INDEX ON dept (name) USING ttree`,
		`CREATE TABLE emp (name STRING, id INT, age INT, dept REF(dept), PRIMARY KEY id)`,
		`CREATE INDEX ON emp (age) USING ttree`,
		`CREATE INDEX ON emp (name) USING mlh`,
		`INSERT INTO dept VALUES ('Toy', 459), ('Shoe', 409), ('Linen', 411), ('Paint', 455)`,
		`INSERT INTO emp VALUES
		   ('Dave',  23, 24, REF(dept, id, 459)),
		   ('Suzan', 12, 27, REF(dept, id, 459)),
		   ('Yaman', 44, 54, REF(dept, id, 411)),
		   ('Jane',  43, 47, REF(dept, id, 411)),
		   ('Cindy', 22, 22, REF(dept, id, 409)),
		   ('Umar',  51, 68, REF(dept, id, 409)),
		   ('Vera',  52, 71, REF(dept, id, 459))`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			log.Fatalf("%s: %v", s, err)
		}
	}

	show := func(sql string) {
		fmt.Println(">", sql)
		r, err := db.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		if r.Plan != "" {
			fmt.Println("  plan:", r.Plan)
		}
		if r.Result == nil {
			fmt.Printf("  ok, %d rows affected\n\n", r.RowsAffected)
			return
		}
		for i := 0; i < r.Result.Len(); i++ {
			fmt.Println("  ", r.Result.Row(i))
		}
		fmt.Println()
	}

	// Query 1 of §2.1: a range selection feeding a precomputed join.
	show(`SELECT emp.name, emp.age, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF WHERE age > 65`)

	// Query 2 of §2.1: select the department, join by comparing pointers.
	show(`SELECT emp.name FROM dept JOIN emp ON dept.SELF = emp.dept WHERE name = 'Toy'`)

	// The planner explains itself.
	show(`EXPLAIN SELECT * FROM emp WHERE name = 'Dave'`)
	show(`EXPLAIN SELECT emp.name, dept.name FROM emp JOIN dept ON emp.id = dept.id`)

	// DML round trip.
	show(`UPDATE emp SET age = 25 WHERE id = 23`)
	show(`SELECT name, age FROM emp WHERE id = 23`)
	show(`DELETE FROM emp WHERE age >= 65`)
	show(`SELECT DISTINCT dept.name FROM emp JOIN dept ON emp.dept = dept.SELF`)
}
