package mmdb

import (
	"strings"
	"testing"
)

func sqlDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		`CREATE TABLE dept (name STRING, id INT, PRIMARY KEY id)`,
		`CREATE INDEX ON dept (name) USING ttree`,
		`CREATE TABLE emp (name STRING, id INT, age INT, dept REF(dept), PRIMARY KEY id USING ttree)`,
		`CREATE INDEX ON emp (age) USING ttree`,
		`INSERT INTO dept VALUES ('Toy', 459), ('Shoe', 409), ('Linen', 411), ('Paint', 455)`,
		`INSERT INTO emp VALUES
		   ('Dave', 23, 24, REF(dept, id, 459)),
		   ('Suzan', 12, 27, REF(dept, id, 459)),
		   ('Yaman', 44, 54, REF(dept, id, 411)),
		   ('Jane', 43, 47, REF(dept, id, 411)),
		   ('Cindy', 22, 22, REF(dept, id, 409)),
		   ('Umar', 51, 68, REF(dept, id, 409)),
		   ('Vera', 52, 71, REF(dept, id, 459))`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	return db
}

func TestSQLQuery1(t *testing.T) {
	db := sqlDB(t)
	// The paper's Query 1 in SQL.
	r, err := db.Exec(`SELECT emp.name, emp.age, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF WHERE age > 65`)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsAffected != 2 {
		t.Fatalf("rows=%d plan=%s", r.RowsAffected, r.Plan)
	}
	if !strings.Contains(r.Plan, "precomputed join") {
		t.Fatalf("plan:\n%s", r.Plan)
	}
	got := map[string]string{}
	for i := 0; i < r.Result.Len(); i++ {
		row := r.Result.Row(i)
		got[row[0].Str()] = row[2].Str()
	}
	if got["Umar"] != "Shoe" || got["Vera"] != "Toy" {
		t.Fatalf("%v", got)
	}
}

func TestSQLQuery2(t *testing.T) {
	db := sqlDB(t)
	// The paper's Query 2: departments selected by name, pointer join to
	// employees.
	all := map[string]bool{}
	for _, d := range []string{"Toy", "Shoe"} {
		r, err := db.Exec(`SELECT emp.name FROM dept JOIN emp ON dept.SELF = emp.dept WHERE name = '` + d + `'`)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < r.Result.Len(); i++ {
			all[r.Result.Row(i)[0].Str()] = true
		}
	}
	if len(all) != 5 {
		t.Fatalf("%v", all)
	}
}

func TestSQLExplain(t *testing.T) {
	db := sqlDB(t)
	r, err := db.Exec(`EXPLAIN SELECT * FROM emp WHERE id = 23`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result != nil || !strings.Contains(r.Plan, "tree lookup") {
		t.Fatalf("%+v", r)
	}
}

func TestSQLDistinctAndLimit(t *testing.T) {
	db := sqlDB(t)
	r, err := db.Exec(`SELECT DISTINCT dept.name FROM emp JOIN dept ON emp.dept = dept.SELF`)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsAffected != 3 {
		t.Fatalf("distinct rows=%d", r.RowsAffected)
	}
	r, err = db.Exec(`SELECT name FROM emp LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Len() != 2 {
		t.Fatalf("limit rows=%d", r.Result.Len())
	}
	r, err = db.Exec(`SELECT name FROM emp LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Len() != 0 {
		t.Fatalf("limit 0 rows=%d", r.Result.Len())
	}
}

func TestSQLUpdateDelete(t *testing.T) {
	db := sqlDB(t)
	r, err := db.Exec(`UPDATE emp SET age = 25 WHERE id = 23`)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsAffected != 1 {
		t.Fatalf("update rows=%d", r.RowsAffected)
	}
	chk, _ := db.Exec(`SELECT age FROM emp WHERE id = 23`)
	if chk.Result.Row(0)[0].Int() != 25 {
		t.Fatal("update lost")
	}
	// Range update through the age index, then delete.
	r, err = db.Exec(`UPDATE emp SET age = 65 WHERE age > 65`)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsAffected != 2 {
		t.Fatalf("range update rows=%d", r.RowsAffected)
	}
	r, err = db.Exec(`DELETE FROM emp WHERE age >= 65`)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsAffected != 2 {
		t.Fatalf("delete rows=%d", r.RowsAffected)
	}
	emp, _ := db.Table("emp")
	if emp.Cardinality() != 5 {
		t.Fatalf("cardinality=%d", emp.Cardinality())
	}
	// The index no longer finds the deleted rows.
	chk, _ = db.Exec(`SELECT * FROM emp WHERE age >= 65`)
	if chk.RowsAffected != 0 {
		t.Fatal("deleted rows still visible")
	}
}

func TestSQLRefResolution(t *testing.T) {
	db := sqlDB(t)
	// Ambiguous and missing REFs fail cleanly.
	if _, err := db.Exec(`INSERT INTO emp VALUES ('X', 99, 30, REF(dept, id, 999))`); err == nil {
		t.Fatal("dangling REF accepted")
	}
	// The unique primary index on dept.id rejects duplicates outright.
	if _, err := db.Exec(`INSERT INTO dept VALUES ('Dup', 459)`); err == nil {
		t.Fatal("duplicate dept id accepted")
	}
	// NULL ref is fine.
	if _, err := db.Exec(`INSERT INTO emp VALUES ('NoDept', 98, 33, NULL)`); err != nil {
		t.Fatal(err)
	}
}

func TestSQLErrors(t *testing.T) {
	db := sqlDB(t)
	for _, bad := range []string{
		`SELECT * FROM nope`,
		`SELECT nope FROM emp`,
		`INSERT INTO nope VALUES (1)`,
		`INSERT INTO emp VALUES (1)`,                   // arity
		`INSERT INTO emp VALUES ('a', 'b', 'c', NULL)`, // type
		`UPDATE nope SET a = 1`,
		`DELETE FROM nope`,
		`CREATE TABLE emp (a INT, PRIMARY KEY a)`, // duplicate
		`CREATE INDEX ON emp (nope)`,
		`SELECT * FROM emp WHERE nope = 1`,
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSQLSelectStarWithJoin(t *testing.T) {
	db := sqlDB(t)
	r, err := db.Exec(`SELECT * FROM emp JOIN dept ON emp.dept = dept.SELF WHERE id = 23`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Len() != 1 {
		t.Fatalf("rows=%d", r.Result.Len())
	}
	cols := r.Result.Columns()
	if len(cols) != 6 { // 4 emp + 2 dept
		t.Fatalf("cols=%v", cols)
	}
}
